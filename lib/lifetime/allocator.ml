module I = Mhla_util.Interval

type placement = { block : Occupancy.block; offset : int }

type t = { placements : placement list; high_water_bytes : int }

(* Lifetimes are half-open; an empty one is widened to one slot, as in
   Occupancy, so the buffer still gets a home. *)
let lifetime (b : Occupancy.block) =
  let iv = b.Occupancy.interval in
  if I.is_empty iv then I.make ~lo:iv.I.lo ~hi:(iv.I.lo + 1) else iv

let lifetimes_overlap a b = I.overlaps (lifetime a) (lifetime b)

let ranges_overlap (p : placement) (q : placement) =
  p.offset < q.offset + q.block.Occupancy.bytes
  && q.offset < p.offset + p.block.Occupancy.bytes

(* First fit: scan the address gaps left by already-placed,
   lifetime-overlapping blocks. *)
let place_one placed (b : Occupancy.block) ~capacity =
  let busy =
    List.filter (fun p -> lifetimes_overlap p.block b) placed
    |> List.map (fun p -> (p.offset, p.offset + p.block.Occupancy.bytes))
    |> List.sort compare
  in
  let rec scan candidate = function
    | [] ->
      if candidate + b.Occupancy.bytes <= capacity then Some candidate
      else None
    | (lo, hi) :: rest ->
      if candidate + b.Occupancy.bytes <= lo then Some candidate
      else scan (max candidate hi) rest
  in
  scan 0 busy

let allocate ~capacity blocks =
  if capacity <= 0 then Error "allocate: non-positive capacity"
  else begin
    (* Decreasing size, stable for determinism. *)
    let order =
      List.stable_sort
        (fun (a : Occupancy.block) b ->
          compare b.Occupancy.bytes a.Occupancy.bytes)
        blocks
    in
    let rec go placed = function
      | [] -> Ok placed
      | (b : Occupancy.block) :: rest ->
        if b.Occupancy.bytes > capacity then
          Error
            (Printf.sprintf "allocate: block %s (%dB) exceeds capacity %d"
               b.Occupancy.label b.Occupancy.bytes capacity)
        else (
          match place_one placed b ~capacity with
          | Some offset -> go ({ block = b; offset } :: placed) rest
          | None ->
            Error
              (Printf.sprintf
                 "allocate: no gap for block %s (%dB) within capacity %d"
                 b.Occupancy.label b.Occupancy.bytes capacity))
    in
    match go [] order with
    | Error _ as e -> e
    | Ok placed ->
      (* Restore input order for the result. *)
      let placements =
        List.map
          (fun b ->
            List.find (fun p -> p.block == b) placed)
          blocks
      in
      let high_water =
        List.fold_left
          (fun acc p -> max acc (p.offset + p.block.Occupancy.bytes))
          0 placed
      in
      Ok { placements; high_water_bytes = high_water }
  end

let allocate_exn ~capacity blocks =
  match allocate ~capacity blocks with
  | Ok t -> t
  | Error msg ->
    Mhla_util.Error.capacityf ~context:"Allocator.allocate_exn" "%s" msg

let offset_of t ~label =
  List.find_map
    (fun p ->
      if p.block.Occupancy.label = label then Some p.offset else None)
    t.placements

let conflicts t =
  let rec pairs acc = function
    | p :: rest ->
      let acc =
        List.fold_left
          (fun acc q ->
            if lifetimes_overlap p.block q.block && ranges_overlap p q then
              (p, q) :: acc
            else acc)
          acc rest
      in
      pairs acc rest
    | [] -> acc
  in
  pairs [] t.placements

let utilisation t =
  if t.high_water_bytes = 0 then 1.
  else
    let peak =
      Occupancy.peak_bytes Occupancy.In_place
        (List.map (fun p -> p.block) t.placements)
    in
    float_of_int peak /. float_of_int t.high_water_bytes

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun p ->
      Fmt.pf ppf "0x%04x..0x%04x %a@," p.offset
        (p.offset + p.block.Occupancy.bytes - 1)
        Occupancy.pp_block p.block)
    t.placements;
  Fmt.pf ppf "high water: %dB@]" t.high_water_bytes
