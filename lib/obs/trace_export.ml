module Json = Mhla_util.Json

let value_to_json = function
  | Telemetry.Int n -> Json.int n
  | Telemetry.Float f -> Json.float f
  | Telemetry.Str s -> Json.str s
  | Telemetry.Bool b -> Json.bool b

let event_to_json (e : Telemetry.event) =
  let args =
    match e.Telemetry.args with
    | [] -> []
    | kvs ->
      [ ( "args",
          Json.obj (List.map (fun (k, v) -> (k, value_to_json v)) kvs) ) ]
  in
  (* Instants carry the "t" (thread) scope so viewers draw them on
     their track rather than across the whole timeline. *)
  let scope =
    match e.Telemetry.kind with
    | Telemetry.Instant -> [ ("s", Json.str "t") ]
    | _ -> []
  in
  Json.obj
    ([ ("name", Json.str e.Telemetry.name);
       ( "cat",
         Json.str (if e.Telemetry.cat = "" then "mhla" else e.Telemetry.cat)
       );
       ("ph", Json.str (Telemetry.kind_label e.Telemetry.kind));
       ("ts", Json.float (float_of_int e.Telemetry.ts_ns /. 1e3));
       ("pid", Json.int 1);
       ("tid", Json.int e.Telemetry.tid) ]
    @ scope @ args)

let counters_json t =
  Json.obj
    (List.map (fun (k, v) -> (k, Json.float v)) (Telemetry.counter_values t))

let to_json t =
  Json.obj
    [ ("traceEvents", Json.arr (List.map event_to_json (Telemetry.events t)));
      ("displayTimeUnit", Json.str "ms");
      ("otherData", Json.obj [ ("counters", counters_json t) ]) ]

let write oc t =
  Json.to_channel ~indent:1 oc (to_json t);
  output_char oc '\n'
