module Error = Mhla_util.Error

type value = Int of int | Float of float | Str of string | Bool of bool

type kind = Span_begin | Span_end | Instant | Counter | Gauge

type event = {
  seq : int;
  ts_ns : int;
  tid : int;
  kind : kind;
  cat : string;
  name : string;
  args : (string * value) list;
}

type active = {
  clock : unit -> int;
  epoch : int;
  a_tid : int;
  mutable last_ts : int;
  mutable next_seq : int;
  mutable events_rev : event list;
  mutable stack : string list;  (* open span names, innermost first *)
  counters : (string, float) Hashtbl.t;
  gauge_names : (string, unit) Hashtbl.t;  (* which counters are gauges *)
  on_event : (event -> unit) option;
}

type t = Noop | Active of active

let noop = Noop

let enabled = function Noop -> false | Active _ -> true

let default_clock () = int_of_float (Unix.gettimeofday () *. 1e9)

let collector ?(clock = default_clock) ?(tid = 0) ?on_event () =
  Active
    {
      clock;
      epoch = clock ();
      a_tid = tid;
      last_ts = 0;
      next_seq = 0;
      events_rev = [];
      stack = [];
      counters = Hashtbl.create 16;
      gauge_names = Hashtbl.create 4;
      on_event;
    }

let child t ~tid =
  match t with
  | Noop -> Noop
  | Active a ->
    Active
      {
        clock = a.clock;
        epoch = a.epoch;
        a_tid = tid;
        last_ts = 0;
        next_seq = 0;
        events_rev = [];
        stack = [];
        counters = Hashtbl.create 16;
        gauge_names = Hashtbl.create 4;
        on_event = None;
      }

(* The one recording point: clamp the clock monotone, stamp, buffer,
   tap. Everything observable about a sink funnels through here. *)
let record a kind ~cat ~name args =
  let now = a.clock () - a.epoch in
  let ts = if now > a.last_ts then now else a.last_ts in
  a.last_ts <- ts;
  let e =
    { seq = a.next_seq; ts_ns = ts; tid = a.a_tid; kind; cat; name; args }
  in
  a.next_seq <- a.next_seq + 1;
  a.events_rev <- e :: a.events_rev;
  match a.on_event with None -> () | Some f -> f e

let force_args = function None -> [] | Some f -> f ()

let span_begin t ?(cat = "") ?args name =
  match t with
  | Noop -> ()
  | Active a ->
    record a Span_begin ~cat ~name (force_args args);
    a.stack <- name :: a.stack

let span_end t name =
  match t with
  | Noop -> ()
  | Active a -> (
    match a.stack with
    | innermost :: rest when innermost = name ->
      a.stack <- rest;
      record a Span_end ~cat:"" ~name []
    | innermost :: _ ->
      Error.internalf ~context:"Telemetry.span_end"
        "close %S does not match the innermost open span %S" name innermost
    | [] ->
      Error.internalf ~context:"Telemetry.span_end"
        "close %S with no span open" name)

(* Unwind used by [span] on exceptional exit: close abandoned inner
   spans (innermost first) down to and including [name], keeping the
   event stream well-formed whatever [f] left open. *)
let close_to a name =
  let rec go () =
    match a.stack with
    | [] ->
      Error.internalf ~context:"Telemetry.span"
        "span %S vanished from the open stack" name
    | innermost :: rest ->
      a.stack <- rest;
      record a Span_end ~cat:"" ~name:innermost [];
      if innermost <> name then go ()
  in
  go ()

let span t ?(cat = "") ?args name f =
  match t with
  | Noop -> f ()
  | Active a ->
    record a Span_begin ~cat ~name (force_args args);
    a.stack <- name :: a.stack;
    Fun.protect ~finally:(fun () -> close_to a name) f

let instant t ?(cat = "") ?args name =
  match t with
  | Noop -> ()
  | Active a -> record a Instant ~cat ~name (force_args args)

let count t ?(cat = "") name d =
  match t with
  | Noop -> ()
  | Active a ->
    let v =
      (match Hashtbl.find_opt a.counters name with Some v -> v | None -> 0.)
      +. float_of_int d
    in
    Hashtbl.replace a.counters name v;
    record a Counter ~cat ~name [ (name, Float v) ]

let gauge t ?(cat = "") name v =
  match t with
  | Noop -> ()
  | Active a ->
    Hashtbl.replace a.counters name v;
    Hashtbl.replace a.gauge_names name ();
    record a Gauge ~cat ~name [ (name, Float v) ]

let merge_children t children =
  match t with
  | Noop -> ()
  | Active a ->
    List.iter
      (fun child ->
        match child with
        | Noop -> ()
        | Active c ->
          List.iter
            (fun e ->
              let e = { e with seq = a.next_seq } in
              a.next_seq <- a.next_seq + 1;
              a.events_rev <- e :: a.events_rev;
              if e.ts_ns > a.last_ts then a.last_ts <- e.ts_ns;
              match a.on_event with None -> () | Some f -> f e)
            (List.rev c.events_rev);
          List.iter
            (fun (name, v) ->
              (* Counters accumulate across workers; a gauge keeps the
                 last merged child's value. *)
              if Hashtbl.mem c.gauge_names name then begin
                Hashtbl.replace a.counters name v;
                Hashtbl.replace a.gauge_names name ()
              end
              else
                let prev =
                  match Hashtbl.find_opt a.counters name with
                  | Some p -> p
                  | None -> 0.
                in
                Hashtbl.replace a.counters name (prev +. v))
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.counters []
            |> List.sort compare))
      children

let events = function
  | Noop -> []
  | Active a -> List.rev a.events_rev

let counter_values = function
  | Noop -> []
  | Active a ->
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) a.counters []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let open_spans = function Noop -> [] | Active a -> a.stack

let kind_label = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Instant -> "i"
  | Counter | Gauge -> "C"

let pp_value ppf = function
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.string ppf s
  | Bool b -> Fmt.bool ppf b

let pp_event ppf e =
  let pp_arg ppf (k, v) = Fmt.pf ppf "%s=%a" k pp_value v in
  Fmt.pf ppf "[%s] %s %s%a @@%dus"
    (if e.cat = "" then "-" else e.cat)
    (kind_label e.kind) e.name
    Fmt.(list ~sep:nop (any " " ++ pp_arg))
    e.args (e.ts_ns / 1000)
