(** Exporters for {!Telemetry} sinks.

    Two renderings, both over {!Mhla_util.Json}: the Chrome
    [trace_event] format (load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}) and a flat counters summary.
    The trace object also embeds the counters under
    [otherData.counters], so one [--trace] file carries both. *)

val event_to_json : Telemetry.event -> Mhla_util.Json.t
(** One Chrome trace event: [ph] from the kind ([B]/[E]/[i]/[C]), [ts]
    in microseconds, [pid] 1, [tid] from the event, payload under
    [args]. *)

val counters_json : Telemetry.t -> Mhla_util.Json.t
(** Flat object of final counter/gauge values, keys sorted. *)

val to_json : Telemetry.t -> Mhla_util.Json.t
(** The whole trace:
    [{"traceEvents": [...], "displayTimeUnit": "ms",
      "otherData": {"counters": {...}}}]. *)

val write : out_channel -> Telemetry.t -> unit
(** Stream {!to_json} to a channel ({!Mhla_util.Json.to_channel}; no
    whole-trace string is built) followed by a newline. *)
