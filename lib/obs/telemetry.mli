(** Structured telemetry for the solver stack: nested spans, typed
    counters/gauges and key/value events, recorded against a monotonic
    clock.

    The whole library is instrumented against this one seam. A sink is
    either {!noop} — the default everywhere, guaranteed free of
    observable effect: no events, no allocation beyond the call itself,
    results byte-identical to an uninstrumented run — or an in-memory
    {!collector} that records every event for later export
    ({!Trace_export} renders Chrome [trace_event] JSON and a flat
    counters summary).

    Concurrency: a collector is single-owner mutable state. Parallel
    code gives each worker domain its own {!child} sink and folds them
    back with {!merge_children} after joining — the merge is
    deterministic in the order of the child list, never in worker
    interleaving. *)

(** Typed payload values carried by events. *)
type value = Int of int | Float of float | Str of string | Bool of bool

type kind =
  | Span_begin  (** opening of a nested span *)
  | Span_end  (** closing of the innermost open span *)
  | Instant  (** a point event *)
  | Counter  (** monotonically accumulated; the event carries the new total *)
  | Gauge  (** last-write-wins level; the event carries the new value *)

type event = {
  seq : int;  (** per-sink sequence number, dense from 0 *)
  ts_ns : int;
      (** nanoseconds since the sink's epoch; never decreases within a
          sink (the clock is clamped monotone) *)
  tid : int;  (** logical track: 0 = owner, workers get their own *)
  kind : kind;
  cat : string;  (** category, e.g. ["engine"], ["sweep"] ([""] = none) *)
  name : string;
  args : (string * value) list;
}

type t
(** A telemetry sink. *)

val noop : t
(** The disabled sink. Every operation on it is a single tag test. *)

val enabled : t -> bool
(** [false] exactly for {!noop}. Hot paths may use it to skip argument
    preparation entirely; the [?args] thunks below are never forced on
    a disabled sink anyway. *)

val collector :
  ?clock:(unit -> int) ->
  ?tid:int ->
  ?on_event:(event -> unit) ->
  unit ->
  t
(** An in-memory recording sink. [clock] returns absolute nanoseconds
    (default: wall clock via [Unix.gettimeofday], clamped monotone);
    the sink's epoch is the clock value at creation, so [ts_ns] starts
    near 0. [on_event] is a live tap invoked synchronously on every
    recorded event (the CLI's [--debug] stream); merged child events
    pass through the tap at merge time. *)

val child : t -> tid:int -> t
(** A fresh sink for one worker domain: same clock and epoch as the
    parent (so timestamps align), its own event buffer and counter
    table, no live tap. [child noop] is {!noop}. The child must be
    handed back to {!merge_children} by the thread that owns the
    parent. *)

val merge_children : t -> t list -> unit
(** Fold worker sinks back into the parent, in list order: events are
    appended with fresh parent sequence numbers (keeping their [ts_ns]
    and [tid]), counters are summed, gauges keep the last merged value.
    Deterministic given the list order. Children must not be used
    afterwards. No-op on {!noop}. *)

val span : t -> ?cat:string -> ?args:(unit -> (string * value) list) -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span: a [Span_begin] before, a
    [Span_end] after — also on exception, closing any inner spans [f]
    abandoned so the event stream stays well-formed. On {!noop} this is
    exactly [f ()]. *)

val span_begin :
  t -> ?cat:string -> ?args:(unit -> (string * value) list) -> string -> unit
(** Explicit open, for spans that cannot wrap a closure. Pair with
    {!span_end}. *)

val span_end : t -> string -> unit
(** Close the innermost open span, which must carry exactly this name.
    @raise Mhla_util.Error.Error ([Internal]) on a mismatched or
    unopened close — the well-formedness invariant is enforced, not
    assumed. *)

val instant :
  t -> ?cat:string -> ?args:(unit -> (string * value) list) -> string -> unit
(** A point event. The [args] thunk is only forced on an enabled sink. *)

val count : t -> ?cat:string -> string -> int -> unit
(** [count t name d] adds [d] to counter [name] and records a [Counter]
    event carrying the new total. *)

val gauge : t -> ?cat:string -> string -> float -> unit
(** [gauge t name v] sets gauge [name] to [v] and records a [Gauge]
    event. Counters and gauges share one namespace per sink. *)

val events : t -> event list
(** Everything recorded so far, in sequence order. [[]] on {!noop}. *)

val counter_values : t -> (string * float) list
(** Final counter/gauge values, sorted by name. [[]] on {!noop}. *)

val open_spans : t -> string list
(** Names of currently open spans, innermost first. [[]] on {!noop}. *)

val kind_label : kind -> string
(** ["B"], ["E"], ["i"], ["C"] — the Chrome trace phase letters, also
    used by the CLI's live event printer. *)

val pp_event : event Fmt.t
(** One-line rendering: [\[cat\] PH name k=v k=v @ts]. *)
