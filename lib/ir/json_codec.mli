(** JSON encoding of whole programs — the service wire format's
    program payload.

    [Gen.Snippet] proves programs serialise to OCaml source; this
    module is the machine-facing equivalent: a stable JSON shape that
    [program_of_json] decodes back through the validating
    {!Program.make}, so a decoded program carries exactly the
    invariants a built one does (unique names, positive trips,
    declared arrays, in-scope iterators). {!program_to_json} ∘
    {!program_of_json} and the reverse composition are both the
    identity — the round-trip law the fuzz battery's ["json"] check
    asserts on every generated program.

    The shape, by example:

    {v
    { "name": "blur",
      "arrays": [ { "name": "img", "dims": [64, 64], "element_bytes": 1 } ],
      "body": [
        { "loop": { "iter": "i", "trip": 62, "body": [
          { "stmt": { "name": "s0", "work": 3, "accesses": [
            { "array": "img", "dir": "read",
              "index": [ { "const": 1, "terms": [
                            { "iter": "i", "coeff": 1 } ] },
                         { "const": 0, "terms": [] } ] } ] } } ] } } ] }
    v}

    Every field is mandatory; affine subscripts are a constant plus
    [(iterator, coefficient)] terms sorted by iterator name. *)

val affine_to_json : Affine.t -> Mhla_util.Json.t

val affine_of_json : path:string -> Mhla_util.Json.t -> Affine.t
(** @raise Mhla_util.Error.Error ([Invalid_input]) on a malformed
    payload; [path] (e.g. ["$.body[0].loop"]) prefixes the message so
    the error names the offending node. *)

val access_to_json : Access.t -> Mhla_util.Json.t

val access_of_json : path:string -> Mhla_util.Json.t -> Access.t

val array_decl_to_json : Array_decl.t -> Mhla_util.Json.t

val array_decl_of_json : path:string -> Mhla_util.Json.t -> Array_decl.t

val node_to_json : Program.node -> Mhla_util.Json.t

val node_of_json : path:string -> Mhla_util.Json.t -> Program.node

val program_to_json : Program.t -> Mhla_util.Json.t

val program_of_json :
  ?path:string -> Mhla_util.Json.t -> (Program.t, Mhla_util.Error.t) result
(** Decode and validate ([path] defaults to ["$"]). All structural and
    semantic rejections come back as [Error] with kind
    [Invalid_input]; nothing is raised. *)

val program_of_json_exn : ?path:string -> Mhla_util.Json.t -> Program.t
(** @raise Mhla_util.Error.Error as {!program_of_json} reports. *)
