(** Statements: the leaves of the loop tree.

    A statement bundles the array accesses performed per execution and
    the pure compute work (in CPU cycles) it costs besides those
    accesses. The compute cycles are what Time Extensions use to hide
    block transfers. *)

type t = private {
  name : string;
  work_cycles : int;  (** CPU cycles per execution, memory excluded *)
  accesses : Access.t list;
}

val make : name:string -> work_cycles:int -> accesses:Access.t list -> t
(** @raise Mhla_util.Error.Error on an empty name or negative work. A
    statement with no accesses is allowed (pure compute). *)

val reads : t -> Access.t list

val writes : t -> Access.t list

val touches_array : t -> string -> bool

val writes_array : t -> string -> bool

val pp : t Fmt.t
