(** Affine index expressions over loop iterators.

    An expression has the shape [c0 + c1*i1 + ... + cn*in] where the
    [ik] are loop iterator names. This is the access-function language
    of the whole tool: every array subscript in the IR is affine, which
    is what makes footprints and reuse analytically computable — the
    same restriction the ATOMIUM front-end imposes on input C code. *)

type t

val const : int -> t

val var : ?coeff:int -> string -> t
(** [var ~coeff i] is [coeff * i]; [coeff] defaults to 1. A zero
    coefficient yields {!const}[ 0]. *)

val add : t -> t -> t

val scale : int -> t -> t

val offset : int -> t -> t
(** [offset k e] is [e + k]. *)

val constant_part : t -> int

val coeff : t -> string -> int
(** The coefficient of an iterator, [0] when absent. *)

val iterators : t -> string list
(** Iterators with non-zero coefficient, sorted, without duplicates. *)

val is_constant : t -> bool

val eval : t -> env:(string -> int) -> int
(** Evaluate with [env] giving each iterator's current value.
    @raise Not_found if [env] raises it for a needed iterator. *)

val extent : t -> trip:(string -> int) -> free:(string -> bool) -> int
(** [extent e ~trip ~free] is the width of the value range of [e] when
    every iterator [i] with [free i] sweeps [0 .. trip i - 1] and the
    others are held fixed: [sum over free i of |coeff i| * (trip i - 1)].
    The number of distinct array elements touched along a dimension is
    at most [extent + 1].
    @raise Mhla_util.Error.Error if a free iterator has [trip i <= 0]. *)

val min_value : t -> trip:(string -> int) -> int
(** Smallest value when {e all} iterators sweep their full range.
    @raise Mhla_util.Error.Error if any iterator has [trip i <= 0]. *)

val max_value : t -> trip:(string -> int) -> int
(** Largest value when {e all} iterators sweep their full range.
    @raise Mhla_util.Error.Error if any iterator has [trip i <= 0]. *)

val subst : iter:string -> replacement:t -> t -> t
(** Replace one iterator by an affine expression: the subscript-rewrite
    primitive behind loop transformations such as tiling. *)

val rename : (string -> string) -> t -> t
(** Rename every iterator. The mapping must be injective on the
    expression's iterators (colliding names would merge coefficients).
    @raise Mhla_util.Error.Error when two iterators rename to the same
    target. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : t Fmt.t
