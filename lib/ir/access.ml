type direction = Read | Write

type t = { array : string; direction : direction; index : Affine.t list }

let make ~array ~direction ~index =
  if array = "" then
    Mhla_util.Error.invalidf ~context:"Access.make" "empty array name";
  if index = [] then
    Mhla_util.Error.invalidf ~context:"Access.make" "empty index";
  { array; direction; index }

let read array index = make ~array ~direction:Read ~index

let write array index = make ~array ~direction:Write ~index

let is_read t = t.direction = Read

let is_write t = t.direction = Write

let iterators t =
  List.concat_map Affine.iterators t.index
  |> List.sort_uniq String.compare

let pp_direction ppf = function
  | Read -> Fmt.string ppf "R"
  | Write -> Fmt.string ppf "W"

let pp ppf t =
  Fmt.pf ppf "%a %s%a" pp_direction t.direction t.array
    Fmt.(list ~sep:nop (brackets Affine.pp))
    t.index
