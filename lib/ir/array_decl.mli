(** Array declarations: the data objects MHLA places on memory layers. *)

type t = private {
  name : string;
  dims : int list;  (** extent of each dimension, outermost first *)
  element_bytes : int;  (** bytes per element, e.g. 1 for pixels *)
}

val make : name:string -> dims:int list -> element_bytes:int -> t
(** @raise Mhla_util.Error.Error on an empty name, empty or non-positive
    dimension list, or non-positive element size. *)

val elements : t -> int
(** Total number of elements (product of dimensions). *)

val size_bytes : t -> int

val rank : t -> int
(** Number of dimensions. *)

val pp : t Fmt.t
