type t = { name : string; dims : int list; element_bytes : int }

let make ~name ~dims ~element_bytes =
  let reject fmt = Mhla_util.Error.invalidf ~context:"Array_decl.make" fmt in
  if name = "" then reject "empty name";
  if dims = [] then reject "no dimensions";
  if List.exists (fun d -> d <= 0) dims then
    reject "non-positive dimension in %s" name;
  if element_bytes <= 0 then reject "non-positive element size in %s" name;
  { name; dims; element_bytes }

let elements t = List.fold_left ( * ) 1 t.dims

let size_bytes t = elements t * t.element_bytes

let rank t = List.length t.dims

let pp ppf t =
  Fmt.pf ppf "%s%a (%dB/elem)" t.name
    Fmt.(list ~sep:nop (brackets int))
    t.dims t.element_bytes
