let subst_in_access ~iter ~replacement (a : Access.t) =
  Access.make ~array:a.Access.array ~direction:a.Access.direction
    ~index:(List.map (Affine.subst ~iter ~replacement) a.Access.index)

let subst_in_stmt ~iter ~replacement (s : Stmt.t) =
  Stmt.make ~name:s.Stmt.name ~work_cycles:s.Stmt.work_cycles
    ~accesses:(List.map (subst_in_access ~iter ~replacement) s.Stmt.accesses)

let rec subst_in_node ~iter ~replacement = function
  | Program.Stmt s -> Program.Stmt (subst_in_stmt ~iter ~replacement s)
  | Program.Loop l ->
    Program.Loop
      {
        l with
        Program.body = List.map (subst_in_node ~iter ~replacement) l.Program.body;
      }

let tile ~iter ~factor (p : Program.t) =
  match Program.iterator_trip p iter with
  | None -> Error (Printf.sprintf "tile: no loop %S" iter)
  | Some trip ->
    if factor <= 1 || factor >= trip then
      Error
        (Printf.sprintf "tile: factor %d not in 1 < factor < %d" factor trip)
    else if trip mod factor <> 0 then
      Error
        (Printf.sprintf "tile: factor %d does not divide trip %d" factor trip)
    else begin
      let outer = iter ^ "_o" in
      let inner = iter ^ "_i" in
      let replacement =
        Affine.add (Affine.var ~coeff:factor outer) (Affine.var inner)
      in
      let rec rewrite = function
        | Program.Stmt _ as node -> node
        | Program.Loop l when l.Program.iter = iter ->
          let body =
            List.map (subst_in_node ~iter ~replacement) l.Program.body
          in
          Program.Loop
            {
              Program.iter = outer;
              trip = trip / factor;
              body =
                [ Program.Loop { Program.iter = inner; trip = factor; body } ];
            }
        | Program.Loop l ->
          Program.Loop
            { l with Program.body = List.map rewrite l.Program.body }
      in
      Program.make ~name:p.Program.name ~arrays:p.Program.arrays
        ~body:(List.map rewrite p.Program.body)
    end

let tile_exn ~iter ~factor p =
  match tile ~iter ~factor p with
  | Ok p -> p
  | Error msg ->
    Mhla_util.Error.invalidf ~context:"Transform.tile_exn" "%s" msg

let interchange ~outer ~inner (p : Program.t) =
  let changed = ref false in
  let rec rewrite = function
    | Program.Stmt _ as node -> node
    | Program.Loop l
      when l.Program.iter = outer -> (
      match l.Program.body with
      | [ Program.Loop il ] when il.Program.iter = inner ->
        changed := true;
        Program.Loop
          {
            il with
            Program.body =
              [ Program.Loop { l with Program.body = il.Program.body } ];
          }
      | _ -> Program.Loop l)
    | Program.Loop l ->
      Program.Loop { l with Program.body = List.map rewrite l.Program.body }
  in
  let body = List.map rewrite p.Program.body in
  if not !changed then
    Error
      (Printf.sprintf
         "interchange: %S is not a perfect nest directly inside %S" inner
         outer)
  else Program.make ~name:p.Program.name ~arrays:p.Program.arrays ~body
