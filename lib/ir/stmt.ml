type t = { name : string; work_cycles : int; accesses : Access.t list }

let make ~name ~work_cycles ~accesses =
  if name = "" then Mhla_util.Error.invalidf ~context:"Stmt.make" "empty name";
  if work_cycles < 0 then
    Mhla_util.Error.invalidf ~context:"Stmt.make" "negative work in %s" name;
  { name; work_cycles; accesses }

let reads t = List.filter Access.is_read t.accesses

let writes t = List.filter Access.is_write t.accesses

let touches_array t array =
  List.exists (fun (a : Access.t) -> a.array = array) t.accesses

let writes_array t array =
  List.exists
    (fun (a : Access.t) -> a.array = array && Access.is_write a)
    t.accesses

let pp ppf t =
  Fmt.pf ppf "%s (%d cyc): %a" t.name t.work_cycles
    Fmt.(list ~sep:comma Access.pp)
    t.accesses
