(** Loop transformations that enlarge MHLA's search space.

    MHLA takes the loop structure as given: a copy candidate exists
    only at the nesting levels the program already has. Restructuring
    the loops first — the DTSE flow's earlier steps — creates new
    levels and therefore new, smaller copy candidates. Tiling is the
    workhorse: it turns "one huge window per iteration" into "one small
    block per tile", often the difference between a useless and a
    perfect fit for a given scratchpad. *)

val tile :
  iter:string -> factor:int -> Program.t -> (Program.t, string) result
(** [tile ~iter ~factor p] strip-mines the loop [iter] into an outer
    loop [iter_o] of [trip / factor] iterations and an inner loop
    [iter_i] of [factor], rewriting every subscript with
    [iter = factor * iter_o + iter_i]. Errors when the loop does not
    exist, [factor] does not divide the trip count, or [factor] is not
    in [1 < factor < trip]. *)

val tile_exn : iter:string -> factor:int -> Program.t -> Program.t
(** @raise Mhla_util.Error.Error with {!tile}'s error message. *)

val interchange :
  outer:string -> inner:string -> Program.t -> (Program.t, string) result
(** Swap two perfectly-nested adjacent loops ([inner] must be the sole
    child of [outer]). Changes which reuse direction the copy-candidate
    levels expose. Subscripts are untouched — only the nesting order
    (and hence footprints and transfer counts) changes. *)
