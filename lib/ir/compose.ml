let prefix_names ~prefix (p : Program.t) =
  let rn name = prefix ^ name in
  let rename_access (a : Access.t) =
    Access.make ~array:(rn a.Access.array) ~direction:a.Access.direction
      ~index:(List.map (Affine.rename rn) a.Access.index)
  in
  let rename_stmt (s : Stmt.t) =
    Stmt.make ~name:(rn s.Stmt.name) ~work_cycles:s.Stmt.work_cycles
      ~accesses:(List.map rename_access s.Stmt.accesses)
  in
  let rec rename_node = function
    | Program.Stmt s -> Program.Stmt (rename_stmt s)
    | Program.Loop l ->
      Program.Loop
        {
          Program.iter = rn l.Program.iter;
          trip = l.Program.trip;
          body = List.map rename_node l.Program.body;
        }
  in
  let arrays =
    List.map
      (fun (a : Array_decl.t) ->
        Array_decl.make ~name:(rn a.Array_decl.name) ~dims:a.Array_decl.dims
          ~element_bytes:a.Array_decl.element_bytes)
      p.Program.arrays
  in
  Program.make_exn ~name:(rn p.Program.name) ~arrays
    ~body:(List.map rename_node p.Program.body)

let sequence ~name tasks =
  if tasks = [] then
    Mhla_util.Error.invalidf ~context:"Compose.sequence" "no tasks";
  let renamed =
    List.mapi
      (fun k task -> prefix_names ~prefix:(Printf.sprintf "t%d_" k) task)
      tasks
  in
  let arrays = List.concat_map (fun (p : Program.t) -> p.Program.arrays) renamed in
  let body = List.concat_map (fun (p : Program.t) -> p.Program.body) renamed in
  Program.make_exn ~name ~arrays ~body
