(** Array accesses inside statements. *)

type direction = Read | Write

type t = private {
  array : string;  (** name of the accessed {!Array_decl.t} *)
  direction : direction;
  index : Affine.t list;  (** one affine subscript per array dimension *)
}

val make : array:string -> direction:direction -> index:Affine.t list -> t
(** @raise Mhla_util.Error.Error on an empty array name or empty index. *)

val read : string -> Affine.t list -> t

val write : string -> Affine.t list -> t

val is_read : t -> bool

val is_write : t -> bool

val iterators : t -> string list
(** All iterators appearing in any subscript, sorted, deduplicated. *)

val pp_direction : direction Fmt.t

val pp : t Fmt.t
