module String_map = Map.Make (String)

(* Canonical form: map iterator -> non-zero coefficient, plus constant. *)
type t = { coeffs : int String_map.t; const : int }

let const c = { coeffs = String_map.empty; const = c }

let var ?(coeff = 1) name =
  if coeff = 0 then const 0
  else { coeffs = String_map.singleton name coeff; const = 0 }

let add a b =
  let merge _ ca cb =
    match (ca, cb) with
    | Some ca, Some cb -> if ca + cb = 0 then None else Some (ca + cb)
    | (Some _ as c), None | None, (Some _ as c) -> c
    | None, None -> None
  in
  { coeffs = String_map.merge merge a.coeffs b.coeffs;
    const = a.const + b.const }

let scale k e =
  if k = 0 then const 0
  else
    { coeffs = String_map.map (fun c -> k * c) e.coeffs;
      const = k * e.const }

let offset k e = { e with const = e.const + k }

let constant_part e = e.const

let coeff e name =
  match String_map.find_opt name e.coeffs with Some c -> c | None -> 0

let iterators e = List.map fst (String_map.bindings e.coeffs)

let is_constant e = String_map.is_empty e.coeffs

let eval e ~env =
  String_map.fold (fun name c acc -> acc + (c * env name)) e.coeffs e.const

let extent e ~trip ~free =
  let widen name c acc =
    if not (free name) then acc
    else begin
      let n = trip name in
      if n <= 0 then
        Mhla_util.Error.invalidf ~context:"Affine.extent"
          "iterator %s has trip %d" name n;
      acc + (abs c * (n - 1))
    end
  in
  String_map.fold widen e.coeffs 0

let checked_trip ~context trip name =
  let n = trip name in
  if n <= 0 then
    Mhla_util.Error.invalidf ~context "iterator %s has trip %d" name n;
  n

let min_value e ~trip =
  let lower name c acc =
    let n = checked_trip ~context:"Affine.min_value" trip name in
    if c < 0 then acc + (c * (n - 1)) else acc
  in
  String_map.fold lower e.coeffs e.const

let max_value e ~trip =
  let upper name c acc =
    let n = checked_trip ~context:"Affine.max_value" trip name in
    if c > 0 then acc + (c * (n - 1)) else acc
  in
  String_map.fold upper e.coeffs e.const

let subst ~iter ~replacement e =
  let c = coeff e iter in
  if c = 0 then e
  else begin
    let without = { e with coeffs = String_map.remove iter e.coeffs } in
    add without (scale c replacement)
  end

let rename f e =
  let add_renamed name c (sources, coeffs) =
    let name' = f name in
    (match String_map.find_opt name' sources with
    | Some other ->
      Mhla_util.Error.invalidf ~context:"Affine.rename"
        ~hint:"use distinct target names for every iterator"
        "mapping is not injective: %s and %s both rename to %s" other name
        name'
    | None -> ());
    (String_map.add name' name sources, String_map.add name' c coeffs)
  in
  let _, coeffs =
    String_map.fold add_renamed e.coeffs (String_map.empty, String_map.empty)
  in
  { e with coeffs }

let equal a b = a.const = b.const && String_map.equal ( = ) a.coeffs b.coeffs

let compare a b =
  match compare a.const b.const with
  | 0 -> String_map.compare Stdlib.compare a.coeffs b.coeffs
  | c -> c

let pp ppf e =
  let pp_term ppf (name, c) =
    if c = 1 then Fmt.string ppf name else Fmt.pf ppf "%d*%s" c name
  in
  let terms = String_map.bindings e.coeffs in
  match (terms, e.const) with
  | [], c -> Fmt.int ppf c
  | terms, 0 -> Fmt.(list ~sep:(any " + ") pp_term) ppf terms
  | terms, c ->
    Fmt.pf ppf "%a + %d" Fmt.(list ~sep:(any " + ") pp_term) terms c
