(** Composition of programs into multi-task workloads.

    The paper's future work: "we plan to extend our technique to
    multiple tasks". For statically-scheduled embedded systems the
    simplest realistic model is sequential task composition: tasks run
    one after another on the same platform, sharing the scratchpad. The
    combined program hands MHLA the cross-task view — buffers of
    different tasks have disjoint lifetimes and overlay in-place, which
    a per-task allocation cannot exploit. *)

val sequence : name:string -> Program.t list -> Program.t
(** [sequence ~name tasks] concatenates the tasks in order. Every
    array, iterator and statement of task [k] is prefixed with
    ["tk_"], so the result always validates regardless of name clashes
    between tasks.
    @raise Mhla_util.Error.Error on an empty task list. *)

val prefix_names : prefix:string -> Program.t -> Program.t
(** The renaming used by {!sequence}, exposed for tests: prefix every
    array, iterator and statement name. *)
