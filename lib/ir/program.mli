(** Whole programs: array declarations plus a tree of loops and
    statements, executed sequentially in source order.

    This is the geometric application model MHLA explores: trip counts,
    nesting and affine accesses are all the technique needs — the same
    abstraction ATOMIUM extracts from C sources. *)

type node = Loop of loop | Stmt of Stmt.t

and loop = { iter : string; trip : int; body : node list }

type t = private {
  name : string;
  arrays : Array_decl.t list;
  body : node list;
}

val make :
  name:string -> arrays:Array_decl.t list -> body:node list ->
  (t, string) result
(** Validates the program:
    - array names and statement names unique, iterator names unique,
    - trip counts positive, loop bodies non-empty,
    - every access names a declared array with matching rank,
    - every iterator in a subscript belongs to an enclosing loop. *)

val make_exn :
  name:string -> arrays:Array_decl.t list -> body:node list -> t
(** @raise Mhla_util.Error.Error with the validation message. *)

(** The nesting context of one statement occurrence. *)
type context = {
  stmt : Stmt.t;
  loops : (string * int) list;
      (** enclosing loops as [(iterator, trip)], outermost first *)
}

val contexts : t -> context list
(** All statements, in source (sequential execution) order. *)

val fold_stmts : t -> init:'a -> f:('a -> context -> 'a) -> 'a

val executions : context -> int
(** How many times the statement runs: the product of enclosing trips. *)

val find_array : t -> string -> Array_decl.t option

val find_context : t -> stmt:string -> context option

val total_accesses : t -> array:string -> int
(** Dynamic access count (reads plus writes) to an array. *)

val total_work_cycles : t -> int
(** Dynamic pure-compute cycles of the whole program. *)

val total_access_count : t -> int
(** Dynamic access count over all arrays. *)

val array_names : t -> string list

val used_arrays : t -> string list
(** Declared arrays with at least one access, in declaration order —
    the complement of the dead arrays the [lints] pass warns about.
    The workload generator's shrinker uses this to drop declarations
    that lost their last access. *)

val stmt_names : t -> string list

val iterator_trip : t -> string -> int option
(** Trip count of a loop iterator anywhere in the program. *)

val pp : t Fmt.t
(** Multi-line rendering of the loop tree. *)
