module Json = Mhla_util.Json
module Error = Mhla_util.Error

let fail ~path fmt =
  Error.invalidf ~context:"Json_codec" ("%s: " ^^ fmt) path

(* --- decoding helpers -------------------------------------------------- *)

let kind_name : Json.t -> string = function
  | Json.Obj _ -> "object"
  | Json.Arr _ -> "array"
  | Json.Str _ -> "string"
  | Json.Int _ -> "int"
  | Json.Float _ -> "float"
  | Json.Bool _ -> "bool"
  | Json.Null -> "null"

let as_obj ~path = function
  | Json.Obj fields -> fields
  | j -> fail ~path "expected an object, found %s" (kind_name j)

let as_arr ~path = function
  | Json.Arr items -> items
  | j -> fail ~path "expected an array, found %s" (kind_name j)

let as_str ~path = function
  | Json.Str s -> s
  | j -> fail ~path "expected a string, found %s" (kind_name j)

let as_int ~path = function
  | Json.Int k -> k
  | j -> fail ~path "expected an integer, found %s" (kind_name j)

let field ~path fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> fail ~path "missing field %S" name

(* Unknown fields are rejected: a misspelled optional knob silently
   ignored is the classic wire-format failure mode. *)
let check_fields ~path ~allowed fields =
  List.iter
    (fun (name, _) ->
      if not (List.mem name allowed) then
        fail ~path "unknown field %S (expected one of: %s)" name
          (String.concat ", " allowed))
    fields

let sub path fmt = Printf.ksprintf (fun s -> path ^ s) fmt

(* --- affine ------------------------------------------------------------ *)

let affine_to_json e =
  Json.obj
    [ ("const", Json.int (Affine.constant_part e));
      ( "terms",
        Json.arr
          (List.map
             (fun it ->
               Json.obj
                 [ ("iter", Json.str it);
                   ("coeff", Json.int (Affine.coeff e it)) ])
             (Affine.iterators e)) ) ]

let affine_of_json ~path j =
  let fields = as_obj ~path j in
  check_fields ~path ~allowed:[ "const"; "terms" ] fields;
  let const = as_int ~path:(sub path ".const") (field ~path fields "const") in
  let terms =
    as_arr ~path:(sub path ".terms") (field ~path fields "terms")
  in
  List.fold_left
    (fun acc (k, term) ->
      let path = sub path ".terms[%d]" k in
      let fields = as_obj ~path term in
      check_fields ~path ~allowed:[ "iter"; "coeff" ] fields;
      let iter = as_str ~path:(sub path ".iter") (field ~path fields "iter") in
      let coeff =
        as_int ~path:(sub path ".coeff") (field ~path fields "coeff")
      in
      if Affine.coeff acc iter <> 0 then
        fail ~path "iterator %S appears in two terms" iter;
      Affine.add acc (Affine.var ~coeff iter))
    (Affine.const const)
    (List.mapi (fun k t -> (k, t)) terms)

(* --- accesses ---------------------------------------------------------- *)

let direction_to_string = function
  | Access.Read -> "read"
  | Access.Write -> "write"

let direction_of_string ~path = function
  | "read" -> Access.Read
  | "write" -> Access.Write
  | s -> fail ~path "bad direction %S (expected \"read\" or \"write\")" s

let access_to_json (a : Access.t) =
  Json.obj
    [ ("array", Json.str a.Access.array);
      ("dir", Json.str (direction_to_string a.Access.direction));
      ("index", Json.arr (List.map affine_to_json a.Access.index)) ]

let access_of_json ~path j =
  let fields = as_obj ~path j in
  check_fields ~path ~allowed:[ "array"; "dir"; "index" ] fields;
  let array = as_str ~path:(sub path ".array") (field ~path fields "array") in
  let dir_path = sub path ".dir" in
  let direction =
    direction_of_string ~path:dir_path
      (as_str ~path:dir_path (field ~path fields "dir"))
  in
  let index =
    List.mapi
      (fun k e -> affine_of_json ~path:(sub path ".index[%d]" k) e)
      (as_arr ~path:(sub path ".index") (field ~path fields "index"))
  in
  Access.make ~array ~direction ~index

(* --- arrays ------------------------------------------------------------ *)

let array_decl_to_json (a : Array_decl.t) =
  Json.obj
    [ ("name", Json.str a.Array_decl.name);
      ("dims", Json.arr (List.map Json.int a.Array_decl.dims));
      ("element_bytes", Json.int a.Array_decl.element_bytes) ]

let array_decl_of_json ~path j =
  let fields = as_obj ~path j in
  check_fields ~path ~allowed:[ "name"; "dims"; "element_bytes" ] fields;
  let name = as_str ~path:(sub path ".name") (field ~path fields "name") in
  let dims =
    List.mapi
      (fun k d -> as_int ~path:(sub path ".dims[%d]" k) d)
      (as_arr ~path:(sub path ".dims") (field ~path fields "dims"))
  in
  let element_bytes =
    as_int ~path:(sub path ".element_bytes")
      (field ~path fields "element_bytes")
  in
  Array_decl.make ~name ~dims ~element_bytes

(* --- loop tree --------------------------------------------------------- *)

let rec node_to_json = function
  | Program.Stmt s ->
    Json.obj
      [ ( "stmt",
          Json.obj
            [ ("name", Json.str s.Stmt.name);
              ("work", Json.int s.Stmt.work_cycles);
              ( "accesses",
                Json.arr (List.map access_to_json s.Stmt.accesses) ) ] ) ]
  | Program.Loop l ->
    Json.obj
      [ ( "loop",
          Json.obj
            [ ("iter", Json.str l.Program.iter);
              ("trip", Json.int l.Program.trip);
              ("body", Json.arr (List.map node_to_json l.Program.body)) ] )
      ]

let rec node_of_json ~path j =
  match as_obj ~path j with
  | [ ("stmt", payload) ] ->
    let path = sub path ".stmt" in
    let fields = as_obj ~path payload in
    check_fields ~path ~allowed:[ "name"; "work"; "accesses" ] fields;
    let name = as_str ~path:(sub path ".name") (field ~path fields "name") in
    let work_cycles =
      as_int ~path:(sub path ".work") (field ~path fields "work")
    in
    let accesses =
      List.mapi
        (fun k a -> access_of_json ~path:(sub path ".accesses[%d]" k) a)
        (as_arr ~path:(sub path ".accesses") (field ~path fields "accesses"))
    in
    Program.Stmt (Stmt.make ~name ~work_cycles ~accesses)
  | [ ("loop", payload) ] ->
    let path = sub path ".loop" in
    let fields = as_obj ~path payload in
    check_fields ~path ~allowed:[ "iter"; "trip"; "body" ] fields;
    let iter = as_str ~path:(sub path ".iter") (field ~path fields "iter") in
    let trip = as_int ~path:(sub path ".trip") (field ~path fields "trip") in
    let body =
      List.mapi
        (fun k child -> node_of_json ~path:(sub path ".body[%d]" k) child)
        (as_arr ~path:(sub path ".body") (field ~path fields "body"))
    in
    Program.Loop { Program.iter; trip; body }
  | _ ->
    fail ~path
      "expected an object with exactly one of the fields \"loop\" or \
       \"stmt\""

(* --- programs ---------------------------------------------------------- *)

let program_to_json (p : Program.t) =
  Json.obj
    [ ("name", Json.str p.Program.name);
      ("arrays", Json.arr (List.map array_decl_to_json p.Program.arrays));
      ("body", Json.arr (List.map node_to_json p.Program.body)) ]

let program_of_json_exn ?(path = "$") j =
  let fields = as_obj ~path j in
  check_fields ~path ~allowed:[ "name"; "arrays"; "body" ] fields;
  let name = as_str ~path:(sub path ".name") (field ~path fields "name") in
  let arrays =
    List.mapi
      (fun k a -> array_decl_of_json ~path:(sub path ".arrays[%d]" k) a)
      (as_arr ~path:(sub path ".arrays") (field ~path fields "arrays"))
  in
  let body =
    List.mapi
      (fun k nd -> node_of_json ~path:(sub path ".body[%d]" k) nd)
      (as_arr ~path:(sub path ".body") (field ~path fields "body"))
  in
  Program.make_exn ~name ~arrays ~body

let program_of_json ?path j =
  match Error.catch (fun () -> program_of_json_exn ?path j) with
  | Ok p -> Ok p
  | Result.Error _ as e -> e
