type node = Loop of loop | Stmt of Stmt.t

and loop = { iter : string; trip : int; body : node list }

type t = { name : string; arrays : Array_decl.t list; body : node list }

type context = { stmt : Stmt.t; loops : (string * int) list }

(* --- validation ------------------------------------------------------- *)

exception Bad of string

let check_unique what names =
  let sorted = List.sort String.compare names in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | [ _ ] | [] -> None
  in
  match dup sorted with
  | Some name -> raise (Bad (Printf.sprintf "duplicate %s %S" what name))
  | None -> ()

let rec collect_iters acc = function
  | Stmt _ -> acc
  | Loop l -> List.fold_left collect_iters (l.iter :: acc) l.body

let rec collect_stmts acc = function
  | Stmt s -> s :: acc
  | Loop l -> List.fold_left collect_stmts acc l.body

let validate name arrays body =
  if name = "" then raise (Bad "empty program name");
  check_unique "array" (List.map (fun (a : Array_decl.t) -> a.name) arrays);
  let iters = List.fold_left collect_iters [] body in
  check_unique "iterator" iters;
  let stmts = List.fold_left collect_stmts [] body in
  check_unique "statement" (List.map (fun (s : Stmt.t) -> s.name) stmts);
  let find_array n =
    List.find_opt (fun (a : Array_decl.t) -> a.name = n) arrays
  in
  let check_access enclosing (s : Stmt.t) (a : Access.t) =
    match find_array a.array with
    | None ->
      raise
        (Bad
           (Printf.sprintf "statement %S accesses undeclared array %S"
              s.name a.array))
    | Some decl ->
      if List.length a.index <> Array_decl.rank decl then
        raise
          (Bad
             (Printf.sprintf
                "statement %S: access to %S has %d subscripts, array has \
                 rank %d"
                s.name a.array (List.length a.index) (Array_decl.rank decl)));
      let check_iter i =
        if not (List.mem i enclosing) then
          raise
            (Bad
               (Printf.sprintf
                  "statement %S: subscript iterator %S is not an enclosing \
                   loop"
                  s.name i))
      in
      List.iter check_iter (Access.iterators a)
  in
  let rec walk enclosing = function
    | Stmt s -> List.iter (check_access enclosing s) s.accesses
    | Loop l ->
      if l.trip <= 0 then
        raise
          (Bad (Printf.sprintf "loop %S has trip %d" l.iter l.trip));
      if l.body = [] then
        raise (Bad (Printf.sprintf "loop %S has an empty body" l.iter));
      List.iter (walk (l.iter :: enclosing)) l.body
  in
  List.iter (walk []) body

let make ~name ~arrays ~body =
  match validate name arrays body with
  | () -> Ok { name; arrays; body }
  | exception Bad msg -> Error (Printf.sprintf "program %S: %s" name msg)

let make_exn ~name ~arrays ~body =
  match make ~name ~arrays ~body with
  | Ok t -> t
  | Error msg ->
    Mhla_util.Error.invalidf ~context:"Program.make_exn" "%s" msg

(* --- traversal -------------------------------------------------------- *)

let fold_stmts t ~init ~f =
  let rec walk loops acc = function
    | Stmt stmt -> f acc { stmt; loops = List.rev loops }
    | Loop l ->
      List.fold_left (walk ((l.iter, l.trip) :: loops)) acc l.body
  in
  List.fold_left (walk []) init t.body

let contexts t =
  List.rev (fold_stmts t ~init:[] ~f:(fun acc ctx -> ctx :: acc))

let executions ctx =
  List.fold_left (fun acc (_, trip) -> acc * trip) 1 ctx.loops

let find_array t name =
  List.find_opt (fun (a : Array_decl.t) -> a.name = name) t.arrays

let find_context t ~stmt =
  List.find_opt (fun ctx -> ctx.stmt.Stmt.name = stmt) (contexts t)

let total_accesses t ~array =
  let count acc ctx =
    let here =
      List.length
        (List.filter
           (fun (a : Access.t) -> a.array = array)
           ctx.stmt.Stmt.accesses)
    in
    acc + (here * executions ctx)
  in
  fold_stmts t ~init:0 ~f:count

let total_work_cycles t =
  fold_stmts t ~init:0 ~f:(fun acc ctx ->
      acc + (ctx.stmt.Stmt.work_cycles * executions ctx))

let total_access_count t =
  fold_stmts t ~init:0 ~f:(fun acc ctx ->
      acc + (List.length ctx.stmt.Stmt.accesses * executions ctx))

let array_names t = List.map (fun (a : Array_decl.t) -> a.name) t.arrays

let used_arrays t =
  let touched =
    fold_stmts t ~init:[] ~f:(fun acc ctx ->
        List.fold_left
          (fun acc (a : Access.t) ->
            if List.mem a.array acc then acc else a.array :: acc)
          acc ctx.stmt.Stmt.accesses)
  in
  List.filter (fun name -> List.mem name touched) (array_names t)

let stmt_names t =
  List.map (fun ctx -> ctx.stmt.Stmt.name) (contexts t)

let iterator_trip t name =
  let rec search = function
    | Stmt _ -> None
    | Loop l ->
      if l.iter = name then Some l.trip
      else List.find_map search l.body
  in
  List.find_map search t.body

let pp ppf t =
  let rec pp_node indent ppf = function
    | Stmt s -> Fmt.pf ppf "%s%a@," indent Stmt.pp s
    | Loop l ->
      Fmt.pf ppf "%sfor %s in 0..%d:@," indent l.iter (l.trip - 1);
      List.iter (pp_node (indent ^ "  ") ppf) l.body
  in
  Fmt.pf ppf "@[<v>program %s@," t.name;
  List.iter (fun a -> Fmt.pf ppf "  %a@," Array_decl.pp a) t.arrays;
  List.iter (pp_node "  " ppf) t.body;
  Fmt.pf ppf "@]"
