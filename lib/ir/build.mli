(** Builder DSL for writing loop-nest programs compactly.

    Typical use (full-search motion estimation, abridged):
    {[
      let open Mhla_ir.Build in
      program "me"
        ~arrays:[ array "frame" [ 144; 176 ]; array "ref" [ 144; 176 ] ]
        [ loop "by" 9
            [ loop "bx" 11
                [ loop "dy" 16
                    [ stmt "sad" ~work:2
                        [ rd "frame" [ i "by" *$ 16 +$ i "dy"; i "bx" *$ 16 ] ]
                    ] ] ] ]
    ]} *)

val i : string -> Affine.t
(** An iterator as an index expression. *)

val c : int -> Affine.t
(** A constant index expression. *)

val ( +$ ) : Affine.t -> Affine.t -> Affine.t

val ( -$ ) : Affine.t -> Affine.t -> Affine.t

val ( *$ ) : Affine.t -> int -> Affine.t
(** Scaling by a constant (right operand). *)

val array : ?element_bytes:int -> string -> int list -> Array_decl.t
(** [element_bytes] defaults to 1 (byte-sized pixels/samples). *)

val rd : string -> Affine.t list -> Access.t

val wr : string -> Affine.t list -> Access.t

val stmt : string -> ?work:int -> Access.t list -> Program.node
(** [work] defaults to 1 cycle per execution. *)

val loop : string -> int -> Program.node list -> Program.node

val program :
  string -> arrays:Array_decl.t list -> Program.node list -> Program.t
(** @raise Mhla_util.Error.Error when validation fails. *)
