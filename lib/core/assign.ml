module Analysis = Mhla_reuse.Analysis
module Candidate = Mhla_reuse.Candidate
module Hierarchy = Mhla_arch.Hierarchy
module Telemetry = Mhla_obs.Telemetry

type config = {
  objective : Cost.objective;
  transfer_mode : Candidate.transfer_mode;
  policy : Mhla_lifetime.Occupancy.policy;
  allow_array_promotion : bool;
  max_chain_length : int;
  layer_budgets : int list option;
  cc_filter : (Analysis.info -> Candidate.t -> bool) option;
}

let default_config =
  {
    objective = Cost.Energy_delay;
    transfer_mode = Candidate.Delta;
    policy = Mhla_lifetime.Occupancy.In_place;
    allow_array_promotion = true;
    max_chain_length = 2;
    layer_budgets = None;
    cc_filter = None;
  }

type step = { description : string; gain : float; objective_after : float }

type result = {
  mapping : Mapping.t;
  breakdown : Cost.breakdown;
  steps : step list;
  evaluations : int;
  full_evaluations : int;
  cache_hits : int;
  cache_misses : int;
}

let result ?(engine_stats = None) ~full_evaluations mapping breakdown steps
    evaluations =
  let cache_hits, cache_misses =
    match engine_stats with
    | None -> (0, 0)
    | Some (s : Engine.stats) ->
      (s.Engine.contribs_reused, s.Engine.contribs_recomputed)
  in
  {
    mapping;
    breakdown;
    steps;
    evaluations;
    full_evaluations;
    cache_hits;
    cache_misses;
  }

(* Copy chains: pick a strictly-decreasing-level subsequence of the
   useful candidates and a strictly-increasing run of on-chip layers.
   The innermost link (first) serves the accesses. *)
let chains config (m : Mapping.t) (info : Analysis.info) =
  let on_chip = Hierarchy.on_chip_levels m.Mapping.hierarchy in
  let candidates = Analysis.useful_candidates info in
  (* The CC-selection policy hook: a filter only narrows the chain
     space ([Direct] always survives in [alternatives]), so any filter
     is safe — at worst the search degenerates to the out-of-the-box
     mapping. [None] (the default) keeps every useful candidate and is
     bit-identical to the pre-policy behaviour. *)
  let candidates =
    match config.cc_filter with
    | None -> candidates
    | Some keep -> List.filter (keep info) candidates
  in
  let depth_cap = min config.max_chain_length (List.length on_chip) in
  (* Build chains inner-to-outer: each extension picks a candidate of
     strictly lower level and a strictly higher layer. *)
  let rec extend chain level_floor layer_floor length acc =
    let acc = if chain = [] then acc else List.rev chain :: acc in
    if length >= depth_cap then acc
    else
      List.fold_left
        (fun acc (c : Candidate.t) ->
          if chain <> [] && c.Candidate.level >= level_floor then acc
          else
            List.fold_left
              (fun acc layer ->
                if layer < layer_floor then acc
                else
                  extend
                    ({ Mapping.candidate = c; layer } :: chain)
                    c.Candidate.level (layer + 1) (length + 1) acc)
              acc on_chip)
        acc candidates
  in
  (* [extend] accumulates the reversed prefixes; rebuild order so the
     innermost (deepest level) link is first, as Mapping expects. *)
  let raw = extend [] max_int 0 0 [] in
  let orient links =
    List.sort
      (fun (a : Mapping.chain_link) b ->
        compare b.Mapping.candidate.Candidate.level
          a.Mapping.candidate.Candidate.level)
      links
  in
  List.rev_map (fun links -> Mapping.Chain (orient links)) raw

let alternatives config m info = Mapping.Direct :: chains config m info

type move = Engine.move =
  | Set_placement of Analysis.access_ref * Mapping.placement
  | Set_array of string * int option

let describe_move = function
  | Set_placement (r, Mapping.Direct) ->
    Fmt.str "%a -> direct" Analysis.pp_access_ref r
  | Set_placement (r, Mapping.Chain links) ->
    let pp_link ppf (l : Mapping.chain_link) =
      Fmt.pf ppf "%s@@L%d" l.Mapping.candidate.Candidate.id l.Mapping.layer
    in
    Fmt.str "%a -> %a" Analysis.pp_access_ref r
      Fmt.(list ~sep:(any "<-") pp_link)
      links
  | Set_array (a, Some l) -> Printf.sprintf "array %s -> L%d" a l
  | Set_array (a, None) -> Printf.sprintf "array %s -> off-chip" a

let apply_move m = function
  | Set_placement (r, p) -> Mapping.with_placement m r p
  | Set_array (a, l) -> Mapping.with_array_layer m ~array:a ~layer:l

let placement_moves_of (m : Mapping.t) alts =
  List.concat_map
    (fun ((info : Analysis.info), placements) ->
      let current = Mapping.placement_of m info.Analysis.ref_ in
      List.filter_map
        (fun p ->
          if p = current then None
          else Some (Set_placement (info.Analysis.ref_, p)))
        placements)
    alts

let array_moves config (m : Mapping.t) =
  if not config.allow_array_promotion then []
  else
    let on_chip = Hierarchy.on_chip_levels m.Mapping.hierarchy in
    List.concat_map
      (fun array ->
        let current =
          let level = Mapping.array_layer m array in
          if level = Hierarchy.main_memory_level m.Mapping.hierarchy then
            None
          else Some level
        in
        List.filter_map
          (fun target ->
            if target = current then None
            else Some (Set_array (array, target)))
          (None :: List.map (fun l -> Some l) on_chip))
      (Mhla_ir.Program.array_names m.Mapping.program)

(* The placement alternatives of an access depend only on the config
   and the hierarchy's on-chip levels, never on the current placements
   — so the engine-driven searches compute them once and reuse the
   {e physically same} values every round, which turns the engine's
   per-entry (placement, home) memo into pointer-compare hits. The
   from-scratch [moves] builds structurally identical lists, so both
   flavours probe the same moves in the same order. *)
let all_alternatives config (m : Mapping.t) =
  List.map
    (fun (info : Analysis.info) -> (info, alternatives config m info))
    m.Mapping.infos

let moves_with ~alts config m = placement_moves_of m alts @ array_moves config m

let moves config (m : Mapping.t) =
  moves_with ~alts:(all_alternatives config m) config m

(* Budgets tighter than the physical capacities: peak occupancy of
   on-chip level [i] must also stay within [budgets.(i)]. A shorter
   list leaves the remaining levels capacity-bound only. *)
let within_budgets config (m : Mapping.t) =
  match config.layer_budgets with
  | None -> true
  | Some budgets ->
    let rec check levels budgets =
      match (levels, budgets) with
      | _, [] -> true
      | [], _ :: _ ->
        Mhla_util.Error.invalidf ~context:"Assign.feasible"
          ~hint:"give at most one budget per on-chip level"
          "more layer budgets than on-chip levels"
      | level :: ls, b :: bs ->
        if b < 0 then
          Mhla_util.Error.invalidf ~context:"Assign.feasible"
            "negative budget %d for level %d" b level;
        Mhla_lifetime.Occupancy.peak_bytes config.policy
          (Mapping.layer_blocks m ~level)
        <= b
        && check ls bs
    in
    check (Hierarchy.on_chip_levels m.Mapping.hierarchy) budgets

let feasible config m =
  Mapping.occupancy_ok ~policy:config.policy m && within_budgets config m

(* Strict-improvement threshold: relative 1e-9 guards against float
   noise causing non-termination. *)
let improves ~current ~candidate =
  candidate < current -. (1e-9 *. (Float.abs current +. 1.))

(* The two search drivers each exist in two flavours selected by
   [?oracle]: the engine flavour probes moves through the incremental
   {!Engine}, the oracle flavour re-runs [Cost.evaluate] from scratch.
   Both probe the same moves in the same order and compare values the
   same way, and [Engine.probe] is bit-identical to the full
   evaluation, so the two flavours take identical decisions and return
   identical mappings — the property the test suite pins down. *)

let no_checkpoint () = ()

let no_commit (_ : move) = ()

let greedy ?(config = default_config) ?(oracle = false)
    ?(first_improvement = false) ?(telemetry = Telemetry.noop) ?reuse
    ?(checkpoint = no_checkpoint) ?(on_commit = no_commit) program hierarchy =
  Telemetry.span telemetry ~cat:"assign" "assign.greedy"
    ~args:(fun () ->
      [ ("oracle", Telemetry.Bool oracle);
        ("first_improvement", Telemetry.Bool first_improvement);
        ( "objective",
          Telemetry.Str (Fmt.str "%a" Cost.pp_objective config.objective) )
      ])
  @@ fun () ->
  let evaluations = ref 0 in
  let start =
    Mapping.direct ~transfer_mode:config.transfer_mode ?reuse program
      hierarchy
  in
  let mk_step move ~current ~value =
    let step =
      {
        description = describe_move move;
        gain = current -. value;
        objective_after = value;
      }
    in
    Telemetry.instant telemetry ~cat:"assign" "greedy.step"
      ~args:(fun () ->
        [ ("move", Telemetry.Str step.description);
          ("gain", Telemetry.Float step.gain);
          ("objective_before", Telemetry.Float current);
          ("objective_after", Telemetry.Float value) ]);
    step
  in
  if oracle then begin
    let objective m =
      incr evaluations;
      Cost.scalar config.objective (Cost.evaluate m)
    in
    let rec descend m current steps =
      checkpoint ();
      let try_move best move =
        let next = apply_move m move in
        if not (feasible config next) then best
        else begin
          let value = objective next in
          match best with
          | Some (_, _, best_value) when value >= best_value -> best
          | Some _ | None ->
            if improves ~current ~candidate:value then Some (move, next, value)
            else best
        end
      in
      (* First-improving descent (a policy alternative to steepest):
         commit the first move that improves, in the deterministic
         [moves] order, instead of scanning them all. *)
      let select ms =
        if first_improvement then
          List.find_map
            (fun move ->
              let next = apply_move m move in
              if not (feasible config next) then None
              else begin
                let value = objective next in
                if improves ~current ~candidate:value then
                  Some (move, next, value)
                else None
              end)
            ms
        else List.fold_left try_move None ms
      in
      match select (moves config m) with
      | None -> (m, current, List.rev steps)
      | Some (move, next, value) ->
        on_commit move;
        descend next value (mk_step move ~current ~value :: steps)
    in
    let start_value = objective start in
    let mapping, _, steps = descend start start_value [] in
    result ~full_evaluations:!evaluations mapping (Cost.evaluate mapping)
      steps !evaluations
  end
  else begin
    let engine =
      Engine.create ~telemetry ~objective:config.objective start
    in
    let alts = all_alternatives config start in
    let rec descend current steps =
      checkpoint ();
      let m = Engine.mapping engine in
      let try_move best move =
        let next = apply_move m move in
        if not (feasible config next) then best
        else begin
          incr evaluations;
          let value = Engine.probe engine move in
          match best with
          | Some (_, best_value) when value >= best_value -> best
          | Some _ | None ->
            if improves ~current ~candidate:value then Some (move, value)
            else best
        end
      in
      let select ms =
        if first_improvement then
          List.find_map
            (fun move ->
              let next = apply_move m move in
              if not (feasible config next) then None
              else begin
                incr evaluations;
                let value = Engine.probe engine move in
                if improves ~current ~candidate:value then Some (move, value)
                else None
              end)
            ms
        else List.fold_left try_move None ms
      in
      match select (moves_with ~alts config m) with
      | None -> (m, current, List.rev steps)
      | Some (move, value) ->
        let step = mk_step move ~current ~value in
        Engine.commit engine move;
        on_commit move;
        descend value (step :: steps)
    in
    incr evaluations (* parity with the oracle's initial evaluation *);
    let start_value = Engine.objective_value engine in
    let mapping, _, steps = descend start_value [] in
    result
      ~engine_stats:(Some (Engine.stats engine))
      ~full_evaluations:0 mapping (Engine.breakdown engine) steps
      !evaluations
  end

let simulated_annealing ?(config = default_config) ?(oracle = false)
    ?(telemetry = Telemetry.noop) ?reuse ?(checkpoint = no_checkpoint)
    ?(on_commit = no_commit) ?(seed = 42L) ?(iterations = 4000) program
    hierarchy =
  Telemetry.span telemetry ~cat:"assign" "assign.anneal"
    ~args:(fun () ->
      [ ("oracle", Telemetry.Bool oracle);
        ("seed", Telemetry.Str (Int64.to_string seed));
        ("iterations", Telemetry.Int iterations) ])
  @@ fun () ->
  let prng = Mhla_util.Prng.create ~seed in
  let evaluations = ref 0 in
  let full_evaluations = ref 0 in
  let start =
    Mapping.direct ~transfer_mode:config.transfer_mode ?reuse program
      hierarchy
  in
  let engine =
    if oracle then None
    else Some (Engine.create ~telemetry ~objective:config.objective start)
  in
  let objective_full m =
    incr evaluations;
    incr full_evaluations;
    Cost.scalar config.objective (Cost.evaluate m)
  in
  let start_value =
    match engine with
    | None -> objective_full start
    | Some e ->
      incr evaluations;
      Engine.objective_value e
  in
  let current = ref start in
  let current_value = ref start_value in
  let best = ref start in
  let best_value = ref start_value in
  let steps = ref [] in
  (* Geometric cooling from 5% of the initial objective down to ~1e-4
     of it: early moves roam, late moves only refine. *)
  let t0 = 0.05 *. start_value in
  let t_end = 1e-4 *. start_value in
  let decay =
    if iterations <= 1 then 1.
    else (t_end /. t0) ** (1. /. float_of_int (iterations - 1))
  in
  let temperature = ref t0 in
  (* Both flavours share the loop; the alternatives are placement-
     independent so they are computed once (structurally identical to
     what per-iteration [moves] would build). *)
  let alts = all_alternatives config start in
  for iter = 1 to iterations do
    checkpoint ();
    (match moves_with ~alts config !current with
    | [] -> ()
    | all_moves ->
      let move = Mhla_util.Prng.pick prng all_moves in
      let next = apply_move !current move in
      if feasible config next then begin
        let value =
          match engine with
          | None -> objective_full next
          | Some e ->
            incr evaluations;
            Engine.probe e move
        in
        let delta = value -. !current_value in
        let accept =
          delta < 0.
          || Mhla_util.Prng.float prng < exp (-.delta /. !temperature)
        in
        Telemetry.instant telemetry ~cat:"assign"
          (if accept then "anneal.accept" else "anneal.reject")
          ~args:(fun () ->
            [ ("iteration", Telemetry.Int iter);
              ("temperature", Telemetry.Float !temperature);
              ("delta", Telemetry.Float delta);
              ("objective", Telemetry.Float value) ]);
        if accept then begin
          (match engine with None -> () | Some e -> Engine.commit e move);
          on_commit move;
          current := next;
          current_value := value;
          if value < !best_value then begin
            let improvement = !best_value -. value in
            best := next;
            best_value := value;
            Telemetry.instant telemetry ~cat:"assign" "anneal.best"
              ~args:(fun () ->
                [ ("iteration", Telemetry.Int iter);
                  ("move", Telemetry.Str (describe_move move));
                  ("objective", Telemetry.Float value) ]);
            steps :=
              {
                description = describe_move move;
                gain = improvement;
                objective_after = value;
              }
              :: !steps
          end
        end
      end);
    temperature := !temperature *. decay
  done;
  result
    ~engine_stats:(Option.map Engine.stats engine)
    ~full_evaluations:!full_evaluations !best (Cost.evaluate !best)
    (List.rev !steps) !evaluations

let exhaustive ?(config = default_config) ?reuse ~max_states program
    hierarchy =
  let start =
    Mapping.direct ~transfer_mode:config.transfer_mode ?reuse program
      hierarchy
  in
  let alts =
    List.map
      (fun (info : Analysis.info) ->
        (info.Analysis.ref_, alternatives config start info))
      start.Mapping.infos
  in
  let states =
    List.fold_left (fun acc (_, ps) -> acc * List.length ps) 1 alts
  in
  if states > max_states then
    Error
      (Printf.sprintf "exhaustive: %d states exceed the budget of %d" states
         max_states)
  else begin
    let evaluations = ref 0 in
    let best = ref None in
    let rec assign m = function
      | [] ->
        if feasible config m then begin
          incr evaluations;
          let value = Cost.scalar config.objective (Cost.evaluate m) in
          match !best with
          | Some (_, best_value) when best_value <= value -> ()
          | Some _ | None -> best := Some (m, value)
        end
      | (ref_, placements) :: rest ->
        List.iter
          (fun p -> assign (Mapping.with_placement m ref_ p) rest)
          placements
    in
    assign start alts;
    match !best with
    | None -> Error "exhaustive: no feasible mapping (capacity too small?)"
    | Some (mapping, _) ->
      Ok
        (result ~full_evaluations:!evaluations mapping
           (Cost.evaluate mapping) [] !evaluations)
  end
