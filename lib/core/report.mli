(** Rendering of exploration results as plain-text reports. *)

val summary : name:string -> Explore.result -> string
(** One-paragraph outcome: gains of both steps, TE detail, headline
    comparison with the paper's bands. *)

val detailed : name:string -> Explore.result -> string
(** Full report: cost breakdowns of all four design points, the chosen
    mapping, applied assignment steps and TE plans. *)

val figure2_table : (string * Explore.result) list -> Mhla_util.Table.t
(** The paper's Figure 2: normalised execution time per application
    (out-of-the-box = 1.00) for MHLA, MHLA+TE and the ideal bound. *)

val figure3_table : (string * Explore.result) list -> Mhla_util.Table.t
(** The paper's Figure 3: normalised energy per application for MHLA
    (and after TE, which the model keeps identical). *)

val headline_table : (string * Explore.result) list -> Mhla_util.Table.t
(** TAB1: per-application percentage gains quoted in §3 of the paper. *)

val sweep_table : Explore.sweep_point list -> Mhla_util.Table.t
(** Per-size cycles/energy after each step of a scalar sweep. *)

val pareto_table : Explore.pareto_outcome -> Mhla_util.Table.t
(** The (size, time, energy) frontier of a budget-vector exploration,
    one row per surviving point in canonical order. *)

val pareto_to_json : Explore.pareto_outcome -> Mhla_util.Json.t
(** Machine-readable frontier: [partial] marker, the frontier points
    (budgets, objectives, normalised views) in canonical order, and
    the search statistics. The [frontier] array is identical for every
    worker count; [stats] may not be (pruning is timing-dependent). *)

val result_to_json : name:string -> Explore.result -> Mhla_util.Json.t
(** Machine-readable result: the four design points' full breakdowns,
    normalised gains, the chosen placements and the TE plans. *)

val results_to_json : (string * Explore.result) list -> Mhla_util.Json.t

val sweep_to_json : Explore.sweep_point list -> Mhla_util.Json.t
