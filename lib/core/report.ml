module Json = Mhla_util.Json
module Table = Mhla_util.Table

let summary ~name (r : Explore.result) =
  let te_detail =
    let hidden = Prefetch.total_hidden_cycles r.Explore.te in
    let plans = List.length r.Explore.te.Prefetch.plans in
    if plans = 0 then "TE not applicable (no DMA block transfers)"
    else Printf.sprintf "TE hid %d cycles across %d block transfers" hidden plans
  in
  Printf.sprintf
    "%s: step 1 cut execution time %.1f%% and energy %.1f%%; step 2 cut a \
     further %.1f%% of the remaining time (ideal bound %.2fx of baseline). %s."
    name
    (Explore.assign_time_gain_percent r)
    (Explore.energy_gain_percent r)
    (Explore.te_extra_gain_percent r)
    (Explore.time_ideal r) te_detail

let detailed ~name (r : Explore.result) =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "== %s ==" name;
  line "%s" (Fmt.str "%a" Mhla_arch.Hierarchy.pp r.Explore.hierarchy);
  line "-- out of the box --";
  line "%s" (Fmt.str "%a" Cost.pp_breakdown r.Explore.baseline);
  line "-- after step 1 (selection & assignment) --";
  line "%s" (Fmt.str "%a" Cost.pp_breakdown r.Explore.after_assign);
  line "-- after step 2 (time extensions) --";
  line "%s" (Fmt.str "%a" Cost.pp_breakdown r.Explore.after_te);
  line "-- ideal (0-wait block transfers) --";
  line "%s" (Fmt.str "%a" Cost.pp_breakdown r.Explore.ideal);
  line "-- mapping --";
  line "%s" (Fmt.str "%a" Mapping.pp r.Explore.assign.Assign.mapping);
  (let a = r.Explore.assign in
   let total = a.Assign.cache_hits + a.Assign.cache_misses in
   if total = 0 then
     line "-- assignment steps (%d evaluations, all full) --"
       a.Assign.evaluations
   else
     line
       "-- assignment steps (%d evaluations; engine cache %d hits / %d \
        misses, %.1f%% hit rate) --"
       a.Assign.evaluations a.Assign.cache_hits a.Assign.cache_misses
       (100. *. float_of_int a.Assign.cache_hits /. float_of_int total));
  List.iter
    (fun (s : Assign.step) ->
      line "  %s (gain %.1f)" s.Assign.description s.Assign.gain)
    r.Explore.assign.Assign.steps;
  line "-- TE plans --";
  List.iter
    (fun p -> line "  %s" (Fmt.str "%a" Prefetch.pp_plan p))
    r.Explore.te.Prefetch.plans;
  Buffer.contents buf

let breakdown_to_json (b : Cost.breakdown) =
  Json.obj
    [ ("total_cycles", Json.int b.Cost.total_cycles);
      ("compute_cycles", Json.int b.Cost.compute_cycles);
      ("access_stall_cycles", Json.int b.Cost.access_stall_cycles);
      ("transfer_stall_cycles", Json.int b.Cost.transfer_stall_cycles);
      ("dma_setup_cycles", Json.int b.Cost.dma_setup_cycles);
      ("total_energy_pj", Json.float b.Cost.total_energy_pj);
      ("access_energy_pj", Json.float b.Cost.access_energy_pj);
      ("transfer_energy_pj", Json.float b.Cost.transfer_energy_pj);
      ("dma_energy_pj", Json.float b.Cost.dma_energy_pj) ]

let placement_to_json (r, placement) =
  let target =
    match placement with
    | Mapping.Direct -> Json.str "direct"
    | Mapping.Chain links ->
      Json.arr
        (List.map
           (fun (l : Mapping.chain_link) ->
             Json.obj
               [ ( "candidate",
                   Json.str l.Mapping.candidate.Mhla_reuse.Candidate.id );
                 ("layer", Json.int l.Mapping.layer);
                 ( "buffer_bytes",
                   Json.int
                     l.Mapping.candidate.Mhla_reuse.Candidate.footprint_bytes
                 ) ])
           links)
  in
  Json.obj
    [ ("access", Json.str (Fmt.str "%a" Mhla_reuse.Analysis.pp_access_ref r));
      ("placement", target) ]

let plan_to_json (p : Prefetch.plan) =
  Json.obj
    [ ("block_transfer", Json.str p.Prefetch.bt.Mapping.bt_id);
      ("bt_time_cycles", Json.int p.Prefetch.bt_time);
      ("hidden_cycles_per_issue", Json.int p.Prefetch.hidden_cycles);
      ("issues", Json.int p.Prefetch.bt.Mapping.issues);
      ("extended_loops", Json.arr (List.map Json.str p.Prefetch.extended));
      ("extra_buffers", Json.int p.Prefetch.extra_buffers);
      ("dma_priority", Json.int p.Prefetch.dma_priority) ]

let result_to_json ~name (r : Explore.result) =
  let mapping = r.Explore.assign.Assign.mapping in
  Json.obj
    [ ("application", Json.str name);
      ("baseline", breakdown_to_json r.Explore.baseline);
      ("after_assign", breakdown_to_json r.Explore.after_assign);
      ("after_te", breakdown_to_json r.Explore.after_te);
      ("ideal", breakdown_to_json r.Explore.ideal);
      ( "gains",
        Json.obj
          [ ( "assign_time_percent",
              Json.float (Explore.assign_time_gain_percent r) );
            ( "te_extra_time_percent",
              Json.float (Explore.te_extra_gain_percent r) );
            ("energy_percent", Json.float (Explore.energy_gain_percent r)) ]
      );
      ( "placements",
        Json.arr (List.map placement_to_json mapping.Mapping.placements) );
      ( "promoted_arrays",
        Json.arr
          (List.map
             (fun (a, l) ->
               Json.obj [ ("array", Json.str a); ("layer", Json.int l) ])
             mapping.Mapping.array_layers) );
      ( "time_extensions",
        Json.arr (List.map plan_to_json r.Explore.te.Prefetch.plans) ) ]

let results_to_json results =
  Json.arr (List.map (fun (name, r) -> result_to_json ~name r) results)

let sweep_to_json points =
  Json.arr
    (List.map
       (fun (p : Explore.sweep_point) ->
         Json.obj
           [ ("onchip_bytes", Json.int p.Explore.onchip_bytes);
             ( "result",
               result_to_json
                 ~name:
                   p.Explore.point_result.Explore.program
                     .Mhla_ir.Program.name
                 p.Explore.point_result ) ])
       points)

let figure2_table results =
  let table =
    Table.create
      ~columns:
        [ ("application", Table.Left);
          ("out-of-box", Table.Right);
          ("MHLA", Table.Right);
          ("MHLA+TE", Table.Right);
          ("ideal", Table.Right);
          ("step1 gain", Table.Right);
          ("TE extra", Table.Right) ]
  in
  List.iter
    (fun (name, r) ->
      Table.add_row table
        [ name;
          "1.00";
          Table.cell_float (Explore.time_after_assign r);
          Table.cell_float (Explore.time_after_te r);
          Table.cell_float (Explore.time_ideal r);
          Table.cell_percent (Explore.assign_time_gain_percent r);
          Table.cell_percent (Explore.te_extra_gain_percent r) ])
    results;
  table

let figure3_table results =
  let table =
    Table.create
      ~columns:
        [ ("application", Table.Left);
          ("out-of-box", Table.Right);
          ("MHLA", Table.Right);
          ("MHLA+TE", Table.Right);
          ("energy gain", Table.Right) ]
  in
  List.iter
    (fun (name, r) ->
      Table.add_row table
        [ name;
          "1.00";
          Table.cell_float (Explore.energy_after_assign r);
          Table.cell_float (Explore.energy_after_te r);
          Table.cell_percent (Explore.energy_gain_percent r) ])
    results;
  table

let headline_table results =
  let table =
    Table.create
      ~columns:
        [ ("application", Table.Left);
          ("time gain step1", Table.Right);
          ("extra time gain step2", Table.Right);
          ("energy gain", Table.Right);
          ("TE BTs", Table.Right);
          ("hidden cycles", Table.Right) ]
  in
  List.iter
    (fun (name, r) ->
      Table.add_row table
        [ name;
          Table.cell_percent (Explore.assign_time_gain_percent r);
          Table.cell_percent (Explore.te_extra_gain_percent r);
          Table.cell_percent (Explore.energy_gain_percent r);
          Table.cell_int (List.length r.Explore.te.Prefetch.plans);
          Table.cell_int (Prefetch.total_hidden_cycles r.Explore.te) ])
    results;
  table

let pareto_stats_to_json (s : Explore.pareto_stats) =
  Json.obj
    [ ("grid_points", Json.int s.Explore.grid_points);
      ("evaluated", Json.int s.Explore.evaluated);
      ("pruned", Json.int s.Explore.pruned);
      ("deadline_skipped", Json.int s.Explore.deadline_skipped);
      ("regions", Json.int s.Explore.regions);
      ("regions_pruned", Json.int s.Explore.regions_pruned) ]

let pareto_point_to_json (p : Explore.pareto_point) =
  let r = p.Explore.point_result in
  Json.obj
    [ ("budgets", Json.arr (List.map Json.int p.Explore.budgets));
      ( "onchip_bytes",
        Json.int (List.fold_left ( + ) 0 p.Explore.budgets) );
      ("cycles", Json.int r.Explore.after_te.Cost.total_cycles);
      ("energy_pj", Json.float r.Explore.after_te.Cost.total_energy_pj);
      ("time_vs_baseline", Json.float (Explore.time_after_te r));
      ("energy_vs_baseline", Json.float (Explore.energy_after_te r)) ]

let pareto_to_json (o : Explore.pareto_outcome) =
  Json.obj
    [ ("partial", Json.bool o.Explore.partial);
      ( "frontier",
        Json.arr
          (List.map
             (fun p ->
               pareto_point_to_json (Mhla_util.Pareto.Nd.payload p))
             (Mhla_util.Pareto.Nd.to_list o.Explore.frontier)) );
      ("stats", pareto_stats_to_json o.Explore.stats) ]

let pareto_table (o : Explore.pareto_outcome) =
  let table =
    Table.create
      ~columns:
        [ ("budgets (bytes/level)", Table.Left);
          ("on-chip total", Table.Right);
          ("cycles MHLA+TE", Table.Right);
          ("energy (pJ)", Table.Right);
          ("time vs base", Table.Right);
          ("energy vs base", Table.Right) ]
  in
  List.iter
    (fun nd ->
      let p = Mhla_util.Pareto.Nd.payload nd in
      let r = p.Explore.point_result in
      Table.add_row table
        [ String.concat "+" (List.map string_of_int p.Explore.budgets);
          Table.cell_int (List.fold_left ( + ) 0 p.Explore.budgets);
          Table.cell_int r.Explore.after_te.Cost.total_cycles;
          Table.cell_float ~decimals:0 r.Explore.after_te.Cost.total_energy_pj;
          Table.cell_float (Explore.time_after_te p.Explore.point_result);
          Table.cell_float (Explore.energy_after_te p.Explore.point_result) ])
    (Mhla_util.Pareto.Nd.to_list o.Explore.frontier);
  table

let sweep_table points =
  let table =
    Table.create
      ~columns:
        [ ("on-chip bytes", Table.Right);
          ("cycles base", Table.Right);
          ("cycles MHLA", Table.Right);
          ("cycles MHLA+TE", Table.Right);
          ("energy base (pJ)", Table.Right);
          ("energy MHLA (pJ)", Table.Right) ]
  in
  List.iter
    (fun (p : Explore.sweep_point) ->
      let r = p.Explore.point_result in
      Table.add_row table
        [ Table.cell_int p.Explore.onchip_bytes;
          Table.cell_int r.Explore.baseline.Cost.total_cycles;
          Table.cell_int r.Explore.after_assign.Cost.total_cycles;
          Table.cell_int r.Explore.after_te.Cost.total_cycles;
          Table.cell_float ~decimals:0 r.Explore.baseline.Cost.total_energy_pj;
          Table.cell_float ~decimals:0
            r.Explore.after_assign.Cost.total_energy_pj ])
    points;
  table
