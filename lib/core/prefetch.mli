(** MHLA step 2: Time Extensions — application-specific prefetching
    (the paper's contribution, Figure 1).

    Every DMA-eligible block transfer is considered for {e extension}:
    initiating the transfer whole loop iterations before its data is
    consumed so that CPU compute hides the transfer time. Per Figure 1:

    - eligible BTs are collected with their per-issue time, their
      [time/size] sort factor, and their {e freedom loops} — the
      enclosing loops between the closest dependency (a writer of the
      source array) and the BT's issue point;
    - BTs are processed in greedy order (largest [time/size] first:
      most hidden cycles bought per byte of buffer space);
    - a BT is extended loop by loop, innermost outward. Each step needs
      one more buffer of the copy's footprint on the destination layer
      (longer copy lifetime); if that overflows the user's on-chip size
      constraint the extension stops. Each granted step hides one
      iteration's worth of CPU cycles of that loop; the BT stops early
      once fully hidden;
    - finally DMA priorities follow the greedy order.

    Only reads sourced from the off-chip layer are prefetched, and only
    when the platform has a transfer engine — without one, TE is not
    applicable and the schedule is empty. *)

(** Why a transfer got no (or no further) extension. *)
type limit =
  | Fully_hidden  (** enough cycles accumulated; no stall remains *)
  | Size_bound  (** next buffer would overflow the size constraint *)
  | Dependency_bound  (** ran out of freedom loops *)
  | Not_extendable  (** no freedom at all (dep in refresh loop, level-0
                        transfer, or unnested access) *)

(** The TE decision for one block transfer. *)
type plan = {
  bt : Mapping.block_transfer;
  bt_time : int;  (** per-issue hideable cycles, Figure 1's BT_time *)
  sort_factor : float;  (** [bt_time / bytes_per_issue] *)
  freedom : string list;  (** freedom loops, innermost first *)
  extended : string list;  (** loops actually granted, innermost first *)
  extra_buffers : int;  (** additional footprint-sized buffers *)
  hidden_cycles : int;  (** per issue, clamped to [bt_time] *)
  limit : limit;
  dma_priority : int;  (** 0 = highest *)
}

(** How the BT list is ordered before the greedy pass. The paper uses
    [By_time_over_size]; the others are the EXT-ORDER ablation. *)
type order = By_time_over_size | Fifo | By_size | By_time

(** What a TE-ordering policy may rank a block transfer by: the same
    per-BT quantities the built-in orders sort on, packaged as plain
    data so policies stay closure-free on the wire. *)
type bt_stats = {
  stat_bt_time : int;  (** per-issue hideable cycles *)
  stat_bytes_per_issue : int;
  stat_sort_factor : float;  (** [bt_time / bytes_per_issue] *)
  stat_freedom_depth : int;  (** freedom loops available *)
  stat_is_writeback : bool;
}

type schedule = {
  plans : plan list;  (** in greedy (priority) order *)
  order : order;
}

val run :
  ?order:order ->
  ?rank:(bt_stats -> float) ->
  ?policy:Mhla_lifetime.Occupancy.policy ->
  ?defer_writebacks:bool ->
  ?telemetry:Mhla_obs.Telemetry.t ->
  Mapping.t ->
  schedule
(** Defaults: the paper's [By_time_over_size] order, in-place sizing,
    and — like the paper — prefetching of reads only. [rank] (a policy
    hook; default absent) overrides [order] entirely: eligible BTs are
    stably sorted by descending score before the greedy pass, while
    the recorded [schedule.order] still names the [order] argument
    (the closure never enters the schedule value, so schedules stay
    structurally comparable).
    [defer_writebacks] additionally plans the symmetric extension the
    paper leaves as future work: a buffer's drain to the off-chip store
    is deferred into the following iterations (the buffer lives one
    extra iteration per granted loop) so the same compute hides it; a
    drain may not cross any other access to an overlapping region of
    the array, and drains only use the buffer slack the prefetches
    leave behind (fetches always plan first). [telemetry] (default
    noop) records a [te.run] span and one [te.plan] event per block
    transfer carrying [bt_time], [sort_factor], the granted loops and
    the stopping [limit]. *)

val hidden_per_issue : schedule -> string -> int
(** Lookup for {!Cost.evaluate}: hidden cycles of a BT by id, [0] for
    unknown ids. *)

val evaluate : Mapping.t -> schedule -> Cost.breakdown
(** [Cost.evaluate] with this schedule's hiding applied. *)

val total_hidden_cycles : schedule -> int
(** Sum over BTs of [issues * hidden_cycles] — the cycles TE removed. *)

val pp_plan : plan Fmt.t
