module Telemetry = Mhla_obs.Telemetry

type result = {
  program : Mhla_ir.Program.t;
  hierarchy : Mhla_arch.Hierarchy.t;
  baseline : Cost.breakdown;
  assign : Assign.result;
  te : Prefetch.schedule;
  after_assign : Cost.breakdown;
  after_te : Cost.breakdown;
  ideal : Cost.breakdown;
}

type search = Greedy | Annealing of { seed : int64; iterations : int }

let run ?config ?order ?(search = Greedy) ?defer_writebacks
    ?(telemetry = Telemetry.noop) ?reuse ?checkpoint program hierarchy =
  Telemetry.span telemetry ~cat:"explore" "explore.run"
    ~args:(fun () ->
      [ ("program", Telemetry.Str program.Mhla_ir.Program.name) ])
  @@ fun () ->
  let stage name f = Telemetry.span telemetry ~cat:"explore" name f in
  let transfer_mode =
    match config with
    | Some c -> c.Assign.transfer_mode
    | None -> Assign.default_config.Assign.transfer_mode
  in
  let baseline =
    stage "explore.baseline" @@ fun () ->
    Cost.evaluate (Mapping.direct ~transfer_mode ?reuse program hierarchy)
  in
  let assign =
    stage "explore.assign" @@ fun () ->
    match search with
    | Greedy ->
      Assign.greedy ?config ~telemetry ?reuse ?checkpoint program hierarchy
    | Annealing { seed; iterations } ->
      Assign.simulated_annealing ?config ~telemetry ?reuse ?checkpoint ~seed
        ~iterations program hierarchy
  in
  let te =
    stage "explore.te" @@ fun () ->
    Prefetch.run ?order ?defer_writebacks ~telemetry assign.Assign.mapping
  in
  stage "explore.evaluate" @@ fun () ->
  {
    program;
    hierarchy;
    baseline;
    assign;
    te;
    after_assign = assign.Assign.breakdown;
    after_te = Prefetch.evaluate assign.Assign.mapping te;
    ideal = Cost.ideal assign.Assign.mapping;
  }

let normalised_cycles r (b : Cost.breakdown) =
  float_of_int b.Cost.total_cycles
  /. float_of_int r.baseline.Cost.total_cycles

let normalised_energy r (b : Cost.breakdown) =
  b.Cost.total_energy_pj /. r.baseline.Cost.total_energy_pj

let time_after_assign r = normalised_cycles r r.after_assign

let time_after_te r = normalised_cycles r r.after_te

let time_ideal r = normalised_cycles r r.ideal

let energy_after_assign r = normalised_energy r r.after_assign

let energy_after_te r = normalised_energy r r.after_te

let assign_time_gain_percent r =
  Mhla_util.Stats.percent_gain
    ~baseline:(float_of_int r.baseline.Cost.total_cycles)
    ~improved:(float_of_int r.after_assign.Cost.total_cycles)

let te_extra_gain_percent r =
  Mhla_util.Stats.percent_gain
    ~baseline:(float_of_int r.after_assign.Cost.total_cycles)
    ~improved:(float_of_int r.after_te.Cost.total_cycles)

let energy_gain_percent r =
  Mhla_util.Stats.percent_gain ~baseline:r.baseline.Cost.total_energy_pj
    ~improved:r.after_assign.Cost.total_energy_pj

type sweep_point = { onchip_bytes : int; point_result : result }

let sweep ?config ?order ?(dma = true) ?search ?jobs
    ?(telemetry = Telemetry.noop) ?checkpoint ~sizes program =
  Telemetry.span telemetry ~cat:"sweep" "explore.sweep"
    ~args:(fun () ->
      [ ("program", Telemetry.Str program.Mhla_ir.Program.name);
        ("points", Telemetry.Int (List.length sizes)) ])
  @@ fun () ->
  (* The reuse analysis and the program timeline are size-independent:
     hoist them out of the per-size loop and share the (immutable)
     result across every point — and across every worker domain. *)
  let reuse =
    Telemetry.span telemetry ~cat:"sweep" "sweep.precompute" @@ fun () ->
    Mapping.precompute program
  in
  let point child onchip_bytes =
    Telemetry.span child ~cat:"sweep" "sweep.point"
      ~args:(fun () -> [ ("onchip_bytes", Telemetry.Int onchip_bytes) ])
    @@ fun () ->
    let hierarchy = Mhla_arch.Presets.two_level ~dma ~onchip_bytes () in
    {
      onchip_bytes;
      point_result =
        run ?config ?order ?search ~telemetry:child ?checkpoint ~reuse
          program hierarchy;
    }
  in
  (* Each worker domain records into its own child sink (sinks are not
     thread-safe); the children merge back in worker order after the
     join, which makes the final event multiset independent of [jobs]. *)
  Mhla_util.Domain_pool.map_with ?jobs
    ~init:(fun i -> Telemetry.child telemetry ~tid:(i + 1))
    ~around:(fun child k ->
      Telemetry.span child ~cat:"sweep" "sweep.worker" k)
    ~finish:(Telemetry.merge_children telemetry)
    point sizes

let pareto_energy points =
  let to_point p =
    Mhla_util.Pareto.point
      ~x:(float_of_int p.onchip_bytes)
      ~y:p.point_result.after_assign.Cost.total_energy_pj p
  in
  Mhla_util.Pareto.of_list (List.map to_point points)

let pareto_cycles points =
  let to_point p =
    Mhla_util.Pareto.point
      ~x:(float_of_int p.onchip_bytes)
      ~y:(float_of_int p.point_result.after_te.Cost.total_cycles)
      p
  in
  Mhla_util.Pareto.of_list (List.map to_point points)
