module Telemetry = Mhla_obs.Telemetry

type result = {
  program : Mhla_ir.Program.t;
  hierarchy : Mhla_arch.Hierarchy.t;
  baseline : Cost.breakdown;
  assign : Assign.result;
  te : Prefetch.schedule;
  after_assign : Cost.breakdown;
  after_te : Cost.breakdown;
  ideal : Cost.breakdown;
}

type search =
  | Greedy
  | First_improvement
  | Annealing of { seed : int64; iterations : int }

let run ?config ?order ?rank ?(search = Greedy) ?defer_writebacks
    ?(telemetry = Telemetry.noop) ?reuse ?checkpoint ?on_commit program
    hierarchy =
  Telemetry.span telemetry ~cat:"explore" "explore.run"
    ~args:(fun () ->
      [ ("program", Telemetry.Str program.Mhla_ir.Program.name) ])
  @@ fun () ->
  let stage name f = Telemetry.span telemetry ~cat:"explore" name f in
  let transfer_mode =
    match config with
    | Some c -> c.Assign.transfer_mode
    | None -> Assign.default_config.Assign.transfer_mode
  in
  let baseline =
    stage "explore.baseline" @@ fun () ->
    Cost.evaluate (Mapping.direct ~transfer_mode ?reuse program hierarchy)
  in
  let assign =
    stage "explore.assign" @@ fun () ->
    match search with
    | Greedy ->
      Assign.greedy ?config ~telemetry ?reuse ?checkpoint ?on_commit program
        hierarchy
    | First_improvement ->
      Assign.greedy ?config ~first_improvement:true ~telemetry ?reuse
        ?checkpoint ?on_commit program hierarchy
    | Annealing { seed; iterations } ->
      Assign.simulated_annealing ?config ~telemetry ?reuse ?checkpoint
        ?on_commit ~seed ~iterations program hierarchy
  in
  let te =
    stage "explore.te" @@ fun () ->
    Prefetch.run ?order ?rank ?defer_writebacks ~telemetry
      assign.Assign.mapping
  in
  stage "explore.evaluate" @@ fun () ->
  {
    program;
    hierarchy;
    baseline;
    assign;
    te;
    after_assign = assign.Assign.breakdown;
    after_te = Prefetch.evaluate assign.Assign.mapping te;
    ideal = Cost.ideal assign.Assign.mapping;
  }

let normalised_cycles r (b : Cost.breakdown) =
  float_of_int b.Cost.total_cycles
  /. float_of_int r.baseline.Cost.total_cycles

let normalised_energy r (b : Cost.breakdown) =
  b.Cost.total_energy_pj /. r.baseline.Cost.total_energy_pj

let time_after_assign r = normalised_cycles r r.after_assign

let time_after_te r = normalised_cycles r r.after_te

let time_ideal r = normalised_cycles r r.ideal

let energy_after_assign r = normalised_energy r r.after_assign

let energy_after_te r = normalised_energy r r.after_te

let assign_time_gain_percent r =
  Mhla_util.Stats.percent_gain
    ~baseline:(float_of_int r.baseline.Cost.total_cycles)
    ~improved:(float_of_int r.after_assign.Cost.total_cycles)

let te_extra_gain_percent r =
  Mhla_util.Stats.percent_gain
    ~baseline:(float_of_int r.after_assign.Cost.total_cycles)
    ~improved:(float_of_int r.after_te.Cost.total_cycles)

let energy_gain_percent r =
  Mhla_util.Stats.percent_gain ~baseline:r.baseline.Cost.total_energy_pj
    ~improved:r.after_assign.Cost.total_energy_pj

type sweep_point = { onchip_bytes : int; point_result : result }

let sweep ?config ?order ?(dma = true) ?search ?jobs
    ?(telemetry = Telemetry.noop) ?checkpoint ~sizes program =
  (* Duplicate sizes would burn a worker domain on identical work;
     dedupe and sort so the fan-out sees each platform once. *)
  let sizes = List.sort_uniq compare sizes in
  Telemetry.span telemetry ~cat:"sweep" "explore.sweep"
    ~args:(fun () ->
      [ ("program", Telemetry.Str program.Mhla_ir.Program.name);
        ("points", Telemetry.Int (List.length sizes)) ])
  @@ fun () ->
  (* The reuse analysis and the program timeline are size-independent:
     hoist them out of the per-size loop and share the (immutable)
     result across every point — and across every worker domain. *)
  let reuse =
    Telemetry.span telemetry ~cat:"sweep" "sweep.precompute" @@ fun () ->
    Mapping.precompute program
  in
  let point child onchip_bytes =
    Telemetry.span child ~cat:"sweep" "sweep.point"
      ~args:(fun () -> [ ("onchip_bytes", Telemetry.Int onchip_bytes) ])
    @@ fun () ->
    let hierarchy = Mhla_arch.Presets.two_level ~dma ~onchip_bytes () in
    {
      onchip_bytes;
      point_result =
        run ?config ?order ?search ~telemetry:child ?checkpoint ~reuse
          program hierarchy;
    }
  in
  (* Each worker domain records into its own child sink (sinks are not
     thread-safe); the children merge back in worker order after the
     join, which makes the final event multiset independent of [jobs]. *)
  Mhla_util.Domain_pool.map_with ?jobs
    ~init:(fun i -> Telemetry.child telemetry ~tid:(i + 1))
    ~around:(fun child k ->
      Telemetry.span child ~cat:"sweep" "sweep.worker" k)
    ~finish:(Telemetry.merge_children telemetry)
    point sizes

(* --- per-layer budget-vector exploration ------------------------------- *)

module Pareto = Mhla_util.Pareto

type pareto_point = { budgets : int list; point_result : result }

type pareto_stats = {
  grid_points : int;
  evaluated : int;
  pruned : int;
  deadline_skipped : int;
  regions : int;
  regions_pruned : int;
}

type pareto_outcome = {
  frontier : pareto_point Pareto.Nd.t;
  stats : pareto_stats;
  partial : bool;
}

let pareto_objectives p =
  [|
    float_of_int (List.fold_left ( + ) 0 p.budgets);
    float_of_int p.point_result.after_te.Cost.total_cycles;
    p.point_result.after_te.Cost.total_energy_pj;
  |]

(* The compact shape of an evaluated point that the workers share for
   pruning decisions. *)
type entry = { e_size : int; e_cycles : int; e_energy : float }

let covers q e =
  q.e_size <= e.e_size && q.e_cycles <= e.e_cycles && q.e_energy <= e.e_energy

let rec chunk n = function
  | [] -> []
  | l ->
    let rec take k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let region, rest = take n [] l in
    region :: chunk n rest

let pareto ?config ?order ?(dma = true) ?search ?jobs
    ?(telemetry = Telemetry.noop) ?checkpoint ?reuse ?on_point ~axes program
    =
  let grid = Mhla_arch.Presets.budget_grid ~axes in
  Telemetry.span telemetry ~cat:"pareto" "explore.pareto"
    ~args:(fun () ->
      [ ("program", Telemetry.Str program.Mhla_ir.Program.name);
        ("grid_points", Telemetry.Int (List.length grid)) ])
  @@ fun () ->
  let reuse =
    match reuse with
    | Some r -> r
    | None ->
      Telemetry.span telemetry ~cat:"pareto" "pareto.precompute" @@ fun () ->
      Mapping.precompute program
  in
  (* Regions: runs of the grid along the last (fastest-varying) axis;
     a single-axis grid degenerates to one region per point so the
     fan-out keeps sweep-like parallel granularity. *)
  let region_len =
    match List.rev axes with
    | [] -> 1
    | last :: _ :: _ -> List.length (List.sort_uniq compare last)
    | [ _ ] -> 1
  in
  let regions = chunk region_len grid in
  (* The best evaluated points so far, shared across workers: the
     anytime frontier snapshot the bound checks prune against. Pruning
     is sound regardless of snapshot timing — a region is only skipped
     when an already-evaluated point beats its monotone lower bound
     with strictly smaller size, which proves every point of the
     region strictly dominated — so the folded frontier below is
     independent of the worker count. *)
  let best = Atomic.make ([] : entry list) in
  let expired = Atomic.make false in
  let insert_entry e =
    let rec loop () =
      let old = Atomic.get best in
      if List.exists (fun q -> covers q e) old then ()
      else
        let kept = List.filter (fun q -> not (covers e q)) old in
        if not (Atomic.compare_and_set best old (e :: kept)) then loop ()
    in
    loop ()
  in
  let prunable ~size ~lb_cycles ~lb_energy =
    List.exists
      (fun q ->
        q.e_size < size && q.e_cycles <= lb_cycles
        && q.e_energy <= lb_energy)
      (Atomic.get best)
  in
  let bound budgets =
    let hierarchy = Mhla_arch.Presets.multi_level ~dma ~level_bytes:budgets () in
    let size = List.fold_left ( + ) 0 budgets in
    let lb_cycles, lb_energy =
      Cost.lower_bound ~infos:reuse.Mapping.infos program hierarchy
    in
    (hierarchy, size, lb_cycles, lb_energy)
  in
  let solve_point child budgets =
    let hierarchy, size, lb_cycles, lb_energy = bound budgets in
    if prunable ~size ~lb_cycles ~lb_energy then `Pruned
    else begin
      let r =
        run ?config ?order ?search ~telemetry:child ?checkpoint ~reuse
          program hierarchy
      in
      let p = { budgets; point_result = r } in
      insert_entry
        {
          e_size = size;
          e_cycles = r.after_te.Cost.total_cycles;
          e_energy = r.after_te.Cost.total_energy_pj;
        };
      Telemetry.instant child ~cat:"pareto" "pareto.point"
        ~args:(fun () ->
          [ ("budgets",
             Telemetry.Str
               (String.concat "," (List.map string_of_int budgets)));
            ("cycles", Telemetry.Int r.after_te.Cost.total_cycles);
            ("energy_pj", Telemetry.Float r.after_te.Cost.total_energy_pj) ]);
      Option.iter (fun f -> f p) on_point;
      `Evaluated p
    end
  in
  let do_region child region =
    let min_corner = List.hd region in
    Telemetry.span child ~cat:"pareto" "pareto.region"
      ~args:(fun () ->
        [ ("min_corner",
           Telemetry.Str
             (String.concat "," (List.map string_of_int min_corner)));
          ("points", Telemetry.Int (List.length region)) ])
    @@ fun () ->
    if Atomic.get expired then (false, List.map (fun _ -> `Skipped) region)
    else begin
      let _, size, lb_cycles, lb_energy = bound min_corner in
      if prunable ~size ~lb_cycles ~lb_energy then begin
        Telemetry.instant child ~cat:"pareto" "pareto.region_pruned"
          ~args:(fun () ->
            [ ("min_corner",
               Telemetry.Str
                 (String.concat "," (List.map string_of_int min_corner))) ]);
        (true, List.map (fun _ -> `Pruned) region)
      end
      else
        ( false,
          List.map
            (fun budgets ->
              if Atomic.get expired then `Skipped
              else
                match solve_point child budgets with
                | cell -> cell
                | exception
                    Mhla_util.Error.Error
                      { Mhla_util.Error.kind = Mhla_util.Error.Deadline; _ }
                  ->
                  Atomic.set expired true;
                  `Skipped)
            region )
    end
  in
  let per_region =
    Mhla_util.Domain_pool.map_with ?jobs
      ~init:(fun i -> Telemetry.child telemetry ~tid:(i + 1))
      ~around:(fun child k ->
        Telemetry.span child ~cat:"pareto" "pareto.worker" k)
      ~finish:(Telemetry.merge_children telemetry)
      do_region regions
  in
  (* The result frontier is folded from the evaluated points in
     canonical grid order — never from the racy snapshot — so the set
     and its payloads (first writer wins on equal objective vectors)
     are bit-identical for every [jobs] value. *)
  let evaluated = ref 0 and pruned = ref 0 and skipped = ref 0 in
  let regions_pruned = ref 0 in
  let frontier =
    List.fold_left
      (fun acc (region_pruned, cells) ->
        if region_pruned then incr regions_pruned;
        List.fold_left
          (fun acc cell ->
            match cell with
            | `Evaluated p ->
              incr evaluated;
              Pareto.Nd.add
                (Pareto.Nd.point ~objectives:(pareto_objectives p) p)
                acc
            | `Pruned ->
              incr pruned;
              acc
            | `Skipped ->
              incr skipped;
              acc)
          acc cells)
      Pareto.Nd.empty per_region
  in
  {
    frontier;
    stats =
      {
        grid_points = List.length grid;
        evaluated = !evaluated;
        pruned = !pruned;
        deadline_skipped = !skipped;
        regions = List.length regions;
        regions_pruned = !regions_pruned;
      };
    partial = Atomic.get expired;
  }

let pareto_energy points =
  let to_point p =
    Mhla_util.Pareto.point
      ~x:(float_of_int p.onchip_bytes)
      ~y:p.point_result.after_assign.Cost.total_energy_pj p
  in
  Mhla_util.Pareto.of_list (List.map to_point points)

let pareto_cycles points =
  let to_point p =
    Mhla_util.Pareto.point
      ~x:(float_of_int p.onchip_bytes)
      ~y:(float_of_int p.point_result.after_te.Cost.total_cycles)
      p
  in
  Mhla_util.Pareto.of_list (List.map to_point points)
