module Analysis = Mhla_reuse.Analysis
module Candidate = Mhla_reuse.Candidate
module Error = Mhla_util.Error
module Hierarchy = Mhla_arch.Hierarchy
module Occupancy = Mhla_lifetime.Occupancy
module Schedule = Mhla_lifetime.Schedule

type chain_link = { candidate : Candidate.t; layer : int }

type placement = Direct | Chain of chain_link list

type reuse = { infos : Analysis.info list; schedule : Schedule.t }

(* [t] is declared after [reuse] so its [infos]/[schedule] labels win
   unqualified disambiguation throughout the rest of this file. *)
type t = {
  program : Mhla_ir.Program.t;
  hierarchy : Hierarchy.t;
  transfer_mode : Candidate.transfer_mode;
  infos : Analysis.info list;
  placements : (Analysis.access_ref * placement) list;
  array_layers : (string * int) list;
  schedule : Schedule.t;
}

let precompute program : reuse =
  { infos = Analysis.analyze program; schedule = Schedule.of_program program }

let direct ?(transfer_mode = Candidate.Full) ?reuse program hierarchy =
  let ({ infos; schedule } : reuse) =
    match reuse with Some r -> r | None -> precompute program
  in
  {
    program;
    hierarchy;
    transfer_mode;
    infos;
    placements = List.map (fun (i : Analysis.info) -> (i.ref_, Direct)) infos;
    array_layers = [];
    schedule;
  }

let find_info t ref_ =
  match Analysis.find t.infos ref_ with
  | Some info -> info
  | None ->
    Error.invalidf ~context:"Mapping" "unknown access %s"
      (Fmt.str "%a" Analysis.pp_access_ref ref_)

let validate_chain t info links =
  let reject fmt = Error.invalidf ~context:"Mapping" fmt in
  let main = Hierarchy.main_memory_level t.hierarchy in
  if links = [] then reject "empty chain";
  let check_link { candidate; layer } =
    if layer < 0 || layer >= main then
      reject "chain layer %d not on-chip" layer;
    let belongs =
      candidate.Candidate.stmt = info.Analysis.ref_.Analysis.stmt
      && candidate.Candidate.access_index = info.Analysis.ref_.Analysis.index
    in
    if not belongs then
      reject "candidate %s does not belong to the access"
        candidate.Candidate.id
  in
  List.iter check_link links;
  let rec check_order = function
    | a :: (b :: _ as rest) ->
      if a.candidate.Candidate.level <= b.candidate.Candidate.level then
        reject "chain levels must strictly decrease";
      if a.layer >= b.layer then reject "chain layers must strictly increase";
      check_order rest
    | [ _ ] | [] -> ()
  in
  check_order links

let with_placement t ref_ placement =
  let info = find_info t ref_ in
  (match placement with
  | Direct -> ()
  | Chain links -> validate_chain t info links);
  let replace (r, p) =
    if Analysis.compare_access_ref r ref_ = 0 then (r, placement) else (r, p)
  in
  { t with placements = List.map replace t.placements }

let with_array_layer t ~array ~layer =
  if Mhla_ir.Program.find_array t.program array = None then
    Error.invalidf ~context:"Mapping" "unknown array %s" array;
  let main = Hierarchy.main_memory_level t.hierarchy in
  let array_layers = List.remove_assoc array t.array_layers in
  match layer with
  | None -> { t with array_layers }
  | Some level ->
    if level < 0 || level >= main then
      Error.invalidf ~context:"Mapping" "level %d is not on-chip" level;
    { t with array_layers = (array, level) :: array_layers }

let placement_of t ref_ =
  match
    List.find_opt
      (fun (r, _) -> Analysis.compare_access_ref r ref_ = 0)
      t.placements
  with
  | Some (_, p) -> p
  | None ->
    Error.invalidf ~context:"Mapping" "unknown access %s"
      (Fmt.str "%a" Analysis.pp_access_ref ref_)

let array_layer t array =
  match List.assoc_opt array t.array_layers with
  | Some level -> level
  | None -> Hierarchy.main_memory_level t.hierarchy

let serving_layer t ref_ =
  match placement_of t ref_ with
  | Direct ->
    let info = find_info t ref_ in
    array_layer t info.Analysis.array
  | Chain (link :: _) -> link.layer
  | Chain [] -> assert false

type block_transfer = {
  bt_id : string;
  bt_candidate : Candidate.t;
  src_layer : int;
  dst_layer : int;
  issues : int;
  bytes_per_issue : int;
  total_bytes : int;
  is_writeback : bool;
}

let transfers_of_chain ~transfer_mode ~home links =
  let rec walk = function
    | [] -> []
    | link :: rest ->
      let src = match rest with [] -> home | next :: _ -> next.layer in
      let c = link.candidate in
      let total = Candidate.total_bytes transfer_mode c in
      let issues = c.Candidate.issues in
      let bt =
        {
          bt_id = c.Candidate.id;
          bt_candidate = c;
          src_layer = src;
          dst_layer = link.layer;
          issues;
          bytes_per_issue = (if issues = 0 then 0 else total / issues);
          total_bytes = total;
          is_writeback = c.Candidate.direction = Mhla_ir.Access.Write;
        }
      in
      bt :: walk rest
  in
  walk links

(* A promoted array pays one whole-array fill (it is read on-chip) and,
   when written, one whole-array drain; both stream against the
   off-chip store. Conservative for pure temporaries, but safe. *)
let promoted_transfers t ~array ~level =
  let main = Hierarchy.main_memory_level t.hierarchy in
  let decl =
    match Mhla_ir.Program.find_array t.program array with
    | Some d -> d
    | None -> assert false
  in
  let bytes = Mhla_ir.Array_decl.size_bytes decl in
  let any dir =
    List.exists
      (fun (i : Analysis.info) -> i.array = array && i.direction = dir)
      t.infos
  in
  let mk suffix is_writeback =
    (* Promoted arrays move as one whole-array stream; reuse the
       level-0 candidate of any access for bookkeeping fields. *)
    let proxy =
      List.find_map
        (fun (i : Analysis.info) ->
          if i.array = array then
            List.find_opt
              (fun (c : Candidate.t) -> c.Candidate.level = 0)
              i.candidates
          else None)
        t.infos
    in
    match proxy with
    | None -> None
    | Some c ->
      Some
        {
          bt_id = array ^ suffix;
          bt_candidate = c;
          src_layer = main;
          dst_layer = level;
          issues = 1;
          bytes_per_issue = bytes;
          total_bytes = bytes;
          is_writeback;
        }
  in
  List.filter_map Fun.id
    [
      (if any Mhla_ir.Access.Read then mk ":fill" false else None);
      (if any Mhla_ir.Access.Write then mk ":drain" true else None);
    ]

let promoted_array_transfers t =
  List.concat_map
    (fun (array, level) -> promoted_transfers t ~array ~level)
    t.array_layers

(* Two chain links whose candidates share a [share_key] and endpoints
   hold the same data in the same rhythm: one buffer, one transfer
   stream. Keep the first occurrence. *)
let bt_dedupe_key bt =
  let c = bt.bt_candidate in
  ( c.Candidate.share_key,
    c.Candidate.direction = Mhla_ir.Access.Write,
    bt.src_layer,
    bt.dst_layer )

let dedupe_transfers bts =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun bt ->
      let key = bt_dedupe_key bt in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    bts

let block_transfers t =
  let chains =
    List.concat_map
      (fun (ref_, placement) ->
        match placement with
        | Direct -> []
        | Chain links ->
          let info = find_info t ref_ in
          transfers_of_chain ~transfer_mode:t.transfer_mode
            ~home:(array_layer t info.Analysis.array)
            links)
      t.placements
  in
  dedupe_transfers chains @ promoted_array_transfers t

let layer_blocks t ~level =
  (* Shared buffers appear once, alive over the hull of their sharers'
     lifetimes. *)
  let shared = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun ((_ : Analysis.access_ref), placement) ->
      match placement with
      | Direct -> ()
      | Chain links ->
        List.iter
          (fun link ->
            if link.layer = level then begin
              let c = link.candidate in
              let interval = Schedule.candidate_interval t.schedule c in
              let key = c.Candidate.share_key in
              match Hashtbl.find_opt shared key with
              | None ->
                Hashtbl.replace shared key
                  {
                    Occupancy.label = c.Candidate.id;
                    interval;
                    bytes = c.Candidate.footprint_bytes;
                  };
                order := key :: !order
              | Some block ->
                Hashtbl.replace shared key
                  {
                    block with
                    Occupancy.interval =
                      Mhla_util.Interval.hull block.Occupancy.interval
                        interval;
                    bytes = max block.Occupancy.bytes
                        c.Candidate.footprint_bytes;
                  }
            end)
          links)
    t.placements;
  let chain_blocks =
    List.rev_map (fun key -> Hashtbl.find shared key) !order
  in
  let array_blocks =
    List.filter_map
      (fun (array, l) ->
        if l = level then
          let decl =
            match Mhla_ir.Program.find_array t.program array with
            | Some d -> d
            | None -> assert false
          in
          Some
            {
              Occupancy.label = array;
              interval = Schedule.array_interval t.schedule t.program array;
              bytes = Mhla_ir.Array_decl.size_bytes decl;
            }
        else None)
      t.array_layers
  in
  chain_blocks @ array_blocks

let occupancy_ok ?(policy = Occupancy.In_place) ?(extra = []) t =
  let ok level =
    let layer = Hierarchy.layer t.hierarchy level in
    match layer.Mhla_arch.Layer.capacity_bytes with
    | None -> true
    | Some capacity ->
      let extras =
        List.filter_map
          (fun (l, block) -> if l = level then Some block else None)
          extra
      in
      Occupancy.fits policy ~capacity (layer_blocks t ~level @ extras)
  in
  List.for_all ok (Hierarchy.on_chip_levels t.hierarchy)

let with_hierarchy t hierarchy =
  if Hierarchy.levels hierarchy <> Hierarchy.levels t.hierarchy then
    Error.invalidf ~context:"Mapping.with_hierarchy" "level counts differ";
  { t with hierarchy }

let pp ppf t =
  let pp_placement ppf = function
    | Direct -> Fmt.string ppf "direct"
    | Chain links ->
      let pp_link ppf { candidate; layer } =
        Fmt.pf ppf "%s->L%d" candidate.Candidate.id layer
      in
      Fmt.(list ~sep:comma pp_link) ppf links
  in
  Fmt.pf ppf "@[<v>mapping of %s:@," t.program.Mhla_ir.Program.name;
  List.iter
    (fun (r, p) ->
      Fmt.pf ppf "  %a: %a@," Analysis.pp_access_ref r pp_placement p)
    t.placements;
  List.iter
    (fun (a, l) -> Fmt.pf ppf "  array %s on L%d@," a l)
    t.array_layers;
  Fmt.pf ppf "@]"
