module Analysis = Mhla_reuse.Analysis
module Hierarchy = Mhla_arch.Hierarchy
module Layer = Mhla_arch.Layer

type breakdown = {
  compute_cycles : int;
  access_stall_cycles : int;
  transfer_stall_cycles : int;
  dma_setup_cycles : int;
  total_cycles : int;
  access_energy_pj : float;
  transfer_energy_pj : float;
  dma_energy_pj : float;
  total_energy_pj : float;
}

let bt_cycles_per_issue (m : Mapping.t) (bt : Mapping.block_transfer) =
  if bt.Mapping.bytes_per_issue = 0 then 0
  else begin
    let src = Hierarchy.layer m.Mapping.hierarchy bt.Mapping.src_layer in
    let dst = Hierarchy.layer m.Mapping.hierarchy bt.Mapping.dst_layer in
    let bandwidth =
      min src.Layer.bandwidth_bytes_per_cycle dst.Layer.bandwidth_bytes_per_cycle
    in
    let burst =
      (bt.Mapping.bytes_per_issue + bandwidth - 1) / bandwidth
    in
    src.Layer.latency_cycles + burst
  end

let access_contribution (m : Mapping.t) ~level (info : Analysis.info) =
  let layer = Hierarchy.layer m.Mapping.hierarchy level in
  let n = info.Analysis.executions in
  let stall = n * layer.Layer.latency_cycles in
  let energy =
    match info.Analysis.direction with
    | Mhla_ir.Access.Read -> float_of_int n *. layer.Layer.read_energy_pj
    | Mhla_ir.Access.Write -> float_of_int n *. layer.Layer.write_energy_pj
  in
  (stall, energy)

let access_costs (m : Mapping.t) =
  let add (stall, energy) (info : Analysis.info) =
    let s, e =
      access_contribution m
        ~level:(Mapping.serving_layer m info.Analysis.ref_)
        info
    in
    (stall + s, energy +. e)
  in
  List.fold_left add (0, 0.) m.Mapping.infos

let bt_contribution ?(hidden = 0) ~dma (m : Mapping.t)
    (bt : Mapping.block_transfer) =
  let per_issue = bt_cycles_per_issue m bt in
  let hidden = min per_issue (max 0 hidden) in
  let stall = bt.Mapping.issues * (per_issue - hidden) in
  let setup_cycles, dma_energy =
    match dma with
    | Some d ->
      ( bt.Mapping.issues * d.Mhla_arch.Dma.setup_cycles,
        float_of_int bt.Mapping.issues *. d.Mhla_arch.Dma.setup_energy_pj )
    | None -> (0, 0.)
  in
  let src = Hierarchy.layer m.Mapping.hierarchy bt.Mapping.src_layer in
  let dst = Hierarchy.layer m.Mapping.hierarchy bt.Mapping.dst_layer in
  let element_bytes = bt.Mapping.bt_candidate.Mhla_reuse.Candidate.element_bytes in
  let elements = bt.Mapping.total_bytes / max 1 element_bytes in
  (* A fetch reads the source and writes the destination; a
     write-back streams the other way, same element count. *)
  let per_element =
    if bt.Mapping.is_writeback then
      Layer.burst_read_energy_pj dst +. Layer.burst_write_energy_pj src
    else Layer.burst_read_energy_pj src +. Layer.burst_write_energy_pj dst
  in
  let energy = float_of_int elements *. per_element in
  (stall, setup_cycles, energy, dma_energy)

let transfer_costs ?(hidden_per_issue = fun _ -> 0) (m : Mapping.t) =
  let dma =
    if Hierarchy.has_dma m.Mapping.hierarchy then
      Some (Hierarchy.dma_exn m.Mapping.hierarchy)
    else None
  in
  let add (stall, setup_cycles, energy, dma_energy)
      (bt : Mapping.block_transfer) =
    let s, su, e, d =
      bt_contribution ~hidden:(hidden_per_issue bt.Mapping.bt_id) ~dma m bt
    in
    (stall + s, setup_cycles + su, energy +. e, dma_energy +. d)
  in
  List.fold_left add (0, 0, 0., 0.) (Mapping.block_transfers m)

let evaluate ?hidden_per_issue (m : Mapping.t) =
  let compute = Mhla_ir.Program.total_work_cycles m.Mapping.program in
  let access_stall, access_energy = access_costs m in
  let transfer_stall, dma_setup, transfer_energy, dma_energy =
    transfer_costs ?hidden_per_issue m
  in
  {
    compute_cycles = compute;
    access_stall_cycles = access_stall;
    transfer_stall_cycles = transfer_stall;
    dma_setup_cycles = dma_setup;
    total_cycles = compute + access_stall + transfer_stall + dma_setup;
    access_energy_pj = access_energy;
    transfer_energy_pj = transfer_energy;
    dma_energy_pj = dma_energy;
    total_energy_pj = access_energy +. transfer_energy +. dma_energy;
  }

let ideal (m : Mapping.t) =
  evaluate ~hidden_per_issue:(fun _ -> max_int) m

let lower_bound ~infos program hierarchy =
  let layers = hierarchy.Hierarchy.layers in
  let fold f init = List.fold_left f init layers in
  let min_latency =
    fold (fun a (l : Layer.t) -> min a l.Layer.latency_cycles) max_int
  in
  let min_read =
    fold (fun a (l : Layer.t) -> Float.min a l.Layer.read_energy_pj) infinity
  in
  let min_write =
    fold (fun a (l : Layer.t) -> Float.min a l.Layer.write_energy_pj) infinity
  in
  let add (stall, energy) (info : Analysis.info) =
    let n = info.Analysis.executions in
    let e =
      match info.Analysis.direction with
      | Mhla_ir.Access.Read -> float_of_int n *. min_read
      | Mhla_ir.Access.Write -> float_of_int n *. min_write
    in
    (stall + (n * min_latency), energy +. e)
  in
  let stall, energy = List.fold_left add (0, 0.) infos in
  (Mhla_ir.Program.total_work_cycles program + stall, energy)

type objective = Energy | Cycles | Energy_delay

let scalar objective b =
  match objective with
  | Energy -> b.total_energy_pj
  | Cycles -> float_of_int b.total_cycles
  | Energy_delay -> b.total_energy_pj *. float_of_int b.total_cycles

let pp_objective ppf = function
  | Energy -> Fmt.string ppf "energy"
  | Cycles -> Fmt.string ppf "cycles"
  | Energy_delay -> Fmt.string ppf "energy-delay"

let loop_iteration_cycles (m : Mapping.t) ~iter =
  if Mhla_ir.Program.iterator_trip m.Mapping.program iter = None then
    Mhla_util.Error.invalidf ~context:"Cost.loop_iteration_cycles"
      "unknown iterator %s" iter;
  let per_stmt acc (ctx : Mhla_ir.Program.context) =
    let rec inner_trip = function
      | [] -> None (* stmt not inside [iter] *)
      | (name, _) :: rest when name = iter ->
        Some (List.fold_left (fun p (_, t) -> p * t) 1 rest)
      | _ :: rest -> inner_trip rest
    in
    match inner_trip ctx.Mhla_ir.Program.loops with
    | None -> acc
    | Some executions_per_iteration ->
      let stmt = ctx.Mhla_ir.Program.stmt in
      let stall_per_exec =
        List.fold_left
          (fun s (i : int) ->
            let ref_ = { Analysis.stmt = stmt.Mhla_ir.Stmt.name; index = i } in
            let layer =
              Hierarchy.layer m.Mapping.hierarchy (Mapping.serving_layer m ref_)
            in
            s + layer.Layer.latency_cycles)
          0
          (List.init (List.length stmt.Mhla_ir.Stmt.accesses) Fun.id)
      in
      acc
      + (executions_per_iteration
        * (stmt.Mhla_ir.Stmt.work_cycles + stall_per_exec))
  in
  Mhla_ir.Program.fold_stmts m.Mapping.program ~init:0 ~f:per_stmt

let pp_breakdown ppf b =
  Fmt.pf ppf
    "@[<v>cycles: %d (compute %d, access %d, transfer %d, dma %d)@,\
     energy: %.1f pJ (access %.1f, transfer %.1f, dma %.1f)@]"
    b.total_cycles b.compute_cycles b.access_stall_cycles
    b.transfer_stall_cycles b.dma_setup_cycles b.total_energy_pj
    b.access_energy_pj b.transfer_energy_pj b.dma_energy_pj
