(** Analytic cost engine: cycles and energy of a mapping.

    Implements the paper's evaluation model: only accesses to the
    memory hierarchy (plus the statements' declared compute work)
    count. Execution time = compute + per-access stalls + block-
    transfer stalls + DMA programming; energy = per-access energy +
    transfer traffic energy + DMA control energy. Time Extensions
    reduce only the block-transfer stall term; energy is unchanged —
    exactly the paper's observation about Figures 2 and 3. *)

type breakdown = {
  compute_cycles : int;
  access_stall_cycles : int;  (** CPU-issued loads/stores *)
  transfer_stall_cycles : int;  (** block transfers not hidden by TE *)
  dma_setup_cycles : int;  (** CPU cycles programming the engine *)
  total_cycles : int;
  access_energy_pj : float;
  transfer_energy_pj : float;
  dma_energy_pj : float;
  total_energy_pj : float;
}

val bt_cycles_per_issue : Mapping.t -> Mapping.block_transfer -> int
(** The hideable time of one issue of a block transfer: source latency
    plus the burst time at the slower of the two ports. DMA setup is
    not included — the CPU always pays it. *)

(** {2 Per-unit contributions}

    The cost of a mapping is a sum of independent per-access and
    per-block-transfer terms. {!evaluate} folds the two functions below
    over every unit; the incremental {!Engine} caches them per unit and
    re-computes only the units a move touched. Both engines therefore
    perform {e bit-identical} float operations in the same order — the
    invariant that lets the engine reproduce the oracle exactly. *)

val access_contribution :
  Mapping.t -> level:int -> Mhla_reuse.Analysis.info -> int * float
(** [(stall_cycles, energy_pj)] of one access when its CPU loads/stores
    are served by [level]. Uses the mapping only for the hierarchy. *)

val bt_contribution :
  ?hidden:int ->
  dma:Mhla_arch.Dma.t option ->
  Mapping.t ->
  Mapping.block_transfer ->
  int * int * float * float
(** [(stall, dma_setup, transfer_energy_pj, dma_energy_pj)] of one
    block transfer; [hidden] cycles of each issue (clamped to the issue
    time, default 0) are overlapped with compute. Uses the mapping only
    for the hierarchy; [dma] is the platform's engine, if any. *)

val evaluate : ?hidden_per_issue:(string -> int) -> Mapping.t -> breakdown
(** [hidden_per_issue bt_id] is how many cycles of each issue of that
    transfer are overlapped with computation (from the TE step);
    defaults to no hiding. Hiding is clamped to the issue time. *)

val ideal : Mapping.t -> breakdown
(** Every block transfer fully hidden — the paper's "0 wait cycles
    block transfer time" bound that TE pushes towards. *)

val lower_bound :
  infos:Mhla_reuse.Analysis.info list ->
  Mhla_ir.Program.t ->
  Mhla_arch.Hierarchy.t ->
  int * float
(** [(cycles_floor, energy_floor)]: a bound no mapping of [program]
    onto [hierarchy] can beat — compute plus every access served at
    the cheapest layer's latency (resp. energy), with zero transfer,
    stall and DMA cost. Because the SRAM model's latency and energy
    grow with capacity, the bound is {e monotone} in the hierarchy's
    layer capacities: the floor of a budget box's min corner bounds
    every point in the box, which is what lets the branch-and-bound
    of {!Explore.pareto} prune whole regions soundly. *)

(** What the assignment step minimises. *)
type objective = Energy | Cycles | Energy_delay

val scalar : objective -> breakdown -> float

val pp_objective : objective Fmt.t

val loop_iteration_cycles : Mapping.t -> iter:string -> int
(** Compute + access-stall cycles of {e one} iteration of the loop
    with iterator [iter] (block-transfer stalls excluded): the CPU work
    available to hide a prefetch extended across that loop, Figure 1's
    [compute_loop_cycles].
    @raise Mhla_util.Error.Error for an unknown iterator. *)

val pp_breakdown : breakdown Fmt.t
