(** Incremental cost evaluation for the assignment searches.

    [Cost.evaluate] walks every access and rebuilds every block
    transfer of a mapping from scratch — fine for one evaluation,
    wasteful inside a search that probes thousands of single-move
    variations of the same mapping. This engine caches the per-access
    and per-block-transfer contributions of {!Cost.access_contribution}
    and {!Cost.bt_contribution} and keeps them keyed by the move kinds
    that can invalidate them:

    - [Set_placement r _] dirties only the contribution and the chain
      transfers of access [r];
    - [Set_array a _] dirties the access contributions of the [Direct]
      accesses of [a] (their serving layer moved) and the chain
      transfers of every access of [a] (their outermost source moved);
      the whole-array fill/drain streams are memoised per
      [(array, level)] and never recomputed twice.

    Totals are then a cheap re-fold of the cached contributions {e in
    the exact order [Cost.evaluate] folds them} — the engine never
    subtracts a stale term from a running total. Because every cached
    term is produced by the same functions [Cost.evaluate] uses and the
    re-fold preserves the float summation order, {!objective_value} is
    bit-identical to
    [Cost.scalar objective (Cost.evaluate (mapping t))] — the invariant
    {!Mhla_sim.Crosscheck} re-verifies and the fuzz suite hammers. An
    engine-driven search therefore reproduces the oracle-driven search
    decision-for-decision. *)

(** A single search move. Owned here (rather than by [Assign], which
    re-exports it) so the engine does not depend on the search. *)
type move =
  | Set_placement of Mhla_reuse.Analysis.access_ref * Mapping.placement
  | Set_array of string * int option

(** Counters accumulated since {!create}. [contribs_reused] vs
    [contribs_recomputed] is the cache hit/miss split over the
    per-unit contributions folded by probes; [entries_invalidated]
    counts cached access entries dirtied by [Set_array] applications
    (the cost of whole-array moves under dirty tracking). *)
type stats = {
  probes : int;
  commits : int;
  contribs_reused : int;
  contribs_recomputed : int;
  entries_invalidated : int;
}

type t

val create :
  ?telemetry:Mhla_obs.Telemetry.t ->
  objective:Cost.objective ->
  Mapping.t ->
  t
(** An engine positioned on the given mapping. All contributions are
    computed once, eagerly. [telemetry] (default
    {!Mhla_obs.Telemetry.noop}) receives [engine.create] /
    [engine.probe] / [engine.commit] spans and the
    [engine.probes]/[engine.commits]/[engine.cache_hits]/
    [engine.cache_misses]/[engine.entries_invalidated] counters; a
    disabled sink leaves every result bit-identical. *)

val mapping : t -> Mapping.t
(** The mapping the engine is positioned on — the genuine [Mapping.t],
    built through the same [Mapping.with_placement] /
    [Mapping.with_array_layer] calls an oracle search would make, so
    downstream steps (TE, reports) see an identical value. *)

val probe : t -> move -> float
(** The objective of [mapping t] with [move] applied, recomputing only
    the contributions the move touches; the engine's position is
    unchanged. Bit-identical to
    [Cost.scalar objective (Cost.evaluate (Assign.apply_move (mapping t) move))].
    The move must be well-formed (as produced by [Assign.moves]) —
    probing does not re-run [Mapping]'s validation. *)

val commit : t -> move -> unit
(** Advance the engine's position by [move], keeping the cached
    contributions it does not touch.
    @raise Mhla_util.Error.Error if the underlying [Mapping] update
    rejects the move; the engine is unchanged in that case. *)

val objective_value : t -> float
(** [Cost.scalar objective] of {!breakdown}. *)

val breakdown : t -> Cost.breakdown
(** The full cost breakdown at the current position, re-folded from the
    cache; bit-identical to [Cost.evaluate (mapping t)]. *)

val stats : t -> stats
