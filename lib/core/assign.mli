(** MHLA step 1: copy-candidate selection and layer assignment.

    Starting from the out-of-the-box mapping (everything off-chip), a
    steepest-descent greedy repeatedly applies the feasible move with
    the largest cost gain until no move improves the objective — the
    exploration engine of the MHLA tool. Moves are: serve an access
    through a copy chain (or revert it to Direct), and promote/demote a
    whole array to/from an on-chip layer. Feasibility is the in-place-
    optimised occupancy of every on-chip layer.

    {!exhaustive} searches the full placement space (arrays kept
    off-chip) and is used in tests and the EXT-GREEDY ablation to
    measure the greedy's optimality gap on small instances. *)

type config = {
  objective : Cost.objective;
  transfer_mode : Mhla_reuse.Candidate.transfer_mode;
  policy : Mhla_lifetime.Occupancy.policy;
  allow_array_promotion : bool;
  max_chain_length : int;
      (** cap on copy-chain depth; the hierarchy's on-chip depth is
          also always a cap *)
  layer_budgets : int list option;
      (** per-layer byte budgets tighter than the physical capacities,
          innermost level first; [None] (the default) constrains by
          capacity alone. A shorter list leaves the remaining levels
          capacity-bound. Budgets cap the assignment step's occupancy;
          to also cap the TE double buffers, shrink the hierarchy
          itself (what {!Explore.pareto} does per grid point). *)
  cc_filter : (Mhla_reuse.Analysis.info -> Mhla_reuse.Candidate.t -> bool)
              option;
      (** the CC-selection policy hook: when set, only candidates the
          filter keeps enter the copy-chain space. [Direct] always
          remains an alternative, so any filter is safe (it narrows
          the search, never breaks it). [None] (the default) keeps
          every useful candidate — bit-identical to the pre-policy
          behaviour. A config carrying a filter closure is no longer
          structurally comparable; compare configs only at their
          defaults. *)
}

val default_config : config
(** Energy-delay objective (the balanced trade-off point the figures
    report), [Delta] transfers (the full technique with inter-copy
    reuse), in-place sizing, array promotion on, chains up to depth
    2, no layer budgets, no CC filter. *)

(** One applied move, for reporting. *)
type step = {
  description : string;
  gain : float;  (** objective decrease achieved by the move *)
  objective_after : float;
}

type result = {
  mapping : Mapping.t;
  breakdown : Cost.breakdown;
  steps : step list;  (** in application order *)
  evaluations : int;  (** objective evaluations spent (any flavour) *)
  full_evaluations : int;
      (** how many of those were from-scratch [Cost.evaluate] runs;
          [= evaluations] on the oracle path, [0] on the engine path *)
  cache_hits : int;
      (** per-unit contributions the engine reused across probes *)
  cache_misses : int;  (** contributions the engine had to recompute *)
}

val alternatives :
  config -> Mapping.t -> Mhla_reuse.Analysis.info -> Mapping.placement list
(** All placements considered for an access: [Direct] plus every
    level-monotone copy chain over the on-chip layers (length capped by
    [max_chain_length]). Deterministic order. *)

(** A search move, shared with the incremental engine (which owns the
    type; this is a re-export). *)
type move = Engine.move =
  | Set_placement of Mhla_reuse.Analysis.access_ref * Mapping.placement
  | Set_array of string * int option

val describe_move : move -> string

val apply_move : Mapping.t -> move -> Mapping.t
(** Functional application through the validating [Mapping] updates. *)

val moves : config -> Mapping.t -> move list
(** Every move the searches consider from this mapping, deterministic
    order: placement changes for each access, then array
    promotions/demotions (when allowed). *)

val feasible : config -> Mapping.t -> bool
(** Occupancy of every on-chip layer under the config's policy, plus
    the config's per-layer budgets when set.
    @raise Mhla_util.Error.Error on a negative budget or more budgets
    than on-chip levels. *)

val greedy :
  ?config:config ->
  ?oracle:bool ->
  ?first_improvement:bool ->
  ?telemetry:Mhla_obs.Telemetry.t ->
  ?reuse:Mapping.reuse ->
  ?checkpoint:(unit -> unit) ->
  ?on_commit:(move -> unit) ->
  Mhla_ir.Program.t ->
  Mhla_arch.Hierarchy.t ->
  result
(** Steepest descent — or, with [first_improvement] (default [false]),
    first-improving descent: each round commits the first move of the
    deterministic move order that improves the objective instead of
    scanning every move for the best one (fewer probes per round, more
    rounds, a different — not necessarily worse — local optimum).
    Probes run through the incremental {!Engine}
    unless [oracle] (default [false]) forces from-scratch
    [Cost.evaluate] calls; both flavours return identical results (the
    engine is bit-exact), the oracle flavour exists as the reference to
    test against. [reuse] shares a precomputed analysis/schedule (see
    {!Mapping.precompute}). [telemetry] (default noop) records an
    [assign.greedy] span, one [greedy.step] event per applied move and
    the engine's spans/counters; it never changes the result.
    [checkpoint] (default a no-op) is invoked at the top of every
    descent round; it may raise — e.g. a deadline guard raising
    {!Mhla_util.Error.Error} with kind [Deadline] — to abandon the
    search without corrupting any shared state. As long as it returns
    normally it must not observe or mutate the search, so the result
    stays independent of how often it fires. [on_commit] (default a
    no-op) observes every committed move, in order, right after the
    search's state advances — the hook live verification rides on; the
    same independence contract as [checkpoint] applies: the search
    never lets it change a decision. *)

val exhaustive :
  ?config:config ->
  ?reuse:Mapping.reuse ->
  max_states:int ->
  Mhla_ir.Program.t ->
  Mhla_arch.Hierarchy.t ->
  (result, string) Stdlib.result
(** Full enumeration over access placements (no array promotion).
    [Error] when the state count exceeds [max_states]. *)

val simulated_annealing :
  ?config:config ->
  ?oracle:bool ->
  ?telemetry:Mhla_obs.Telemetry.t ->
  ?reuse:Mapping.reuse ->
  ?checkpoint:(unit -> unit) ->
  ?on_commit:(move -> unit) ->
  ?seed:int64 ->
  ?iterations:int ->
  Mhla_ir.Program.t ->
  Mhla_arch.Hierarchy.t ->
  result
(** Stochastic alternative to {!greedy}: random feasible moves,
    accepted when improving or with Boltzmann probability under a
    geometric cooling schedule; returns the best mapping seen.
    Deterministic for a given [seed] (default [42L]); [iterations]
    defaults to [4000]. Escapes the local optima steepest descent can
    fall into (see the EXT-SEARCH bench), at ~30x the evaluations.
    [oracle]/[reuse] as in {!greedy}; both flavours draw the same
    pseudo-random sequence and take identical decisions. [telemetry]
    records an [assign.anneal] span and per-iteration
    [anneal.accept]/[anneal.reject] events carrying the temperature,
    plus [anneal.best] marks on improvements — the annealing trajectory
    as observable data. [checkpoint] is invoked before every iteration,
    and [on_commit] on every {e accepted} move (the search walks the
    current state; the result is still the best state seen), as in
    {!greedy}. *)
