module Analysis = Mhla_reuse.Analysis
module Candidate = Mhla_reuse.Candidate
module Hierarchy = Mhla_arch.Hierarchy
module Occupancy = Mhla_lifetime.Occupancy
module Schedule = Mhla_lifetime.Schedule
module Telemetry = Mhla_obs.Telemetry

type limit = Fully_hidden | Size_bound | Dependency_bound | Not_extendable

let limit_label = function
  | Fully_hidden -> "fully-hidden"
  | Size_bound -> "size-bound"
  | Dependency_bound -> "dependency-bound"
  | Not_extendable -> "not-extendable"

type plan = {
  bt : Mapping.block_transfer;
  bt_time : int;
  sort_factor : float;
  freedom : string list;
  extended : string list;
  extra_buffers : int;
  hidden_cycles : int;
  limit : limit;
  dma_priority : int;
}

type order = By_time_over_size | Fifo | By_size | By_time

type bt_stats = {
  stat_bt_time : int;
  stat_bytes_per_issue : int;
  stat_sort_factor : float;
  stat_freedom_depth : int;
  stat_is_writeback : bool;
}

type schedule = { plans : plan list; order : order }

let is_dma_eligible ~defer_writebacks (m : Mapping.t)
    (bt : Mapping.block_transfer) =
  Hierarchy.has_dma m.Mapping.hierarchy
  && ((not bt.Mapping.is_writeback) || defer_writebacks)
  && bt.Mapping.src_layer = Hierarchy.main_memory_level m.Mapping.hierarchy
  && bt.Mapping.issues > 0

(* The dependence walk (Figure 1's dep_analysis + loops_between) lives
   in {!Mhla_reuse.Feature} so the policy layer's feature extraction
   shares the exact analysis TE plans against. The candidate's own
   access may be absent from [m.infos] only for synthetic mappings;
   no info means no known enclosing loops, hence no freedom. *)
let freedom_loops (m : Mapping.t) (bt : Mapping.block_transfer) =
  let c = bt.Mapping.bt_candidate in
  match
    Analysis.find m.Mapping.infos
      { Analysis.stmt = c.Candidate.stmt; index = c.Candidate.access_index }
  with
  | None -> []
  | Some info -> Mhla_reuse.Feature.freedom_loops m.Mapping.program info c

let sort_plans order raw =
  let by f = List.stable_sort (fun a b -> compare (f b) (f a)) raw in
  match order with
  | Fifo -> raw
  | By_time_over_size -> by (fun (_, t, factor, _) -> ignore t; factor)
  | By_size ->
    by (fun (bt, _, _, _) -> float_of_int bt.Mapping.bytes_per_issue)
  | By_time -> by (fun (_, t, _, _) -> float_of_int t)

let stats_of ((bt : Mapping.block_transfer), bt_time, factor, freedom) =
  {
    stat_bt_time = bt_time;
    stat_bytes_per_issue = bt.Mapping.bytes_per_issue;
    stat_sort_factor = factor;
    stat_freedom_depth = List.length freedom;
    stat_is_writeback = bt.Mapping.is_writeback;
  }

let run ?(order = By_time_over_size) ?rank ?(policy = Occupancy.In_place)
    ?(defer_writebacks = false) ?(telemetry = Telemetry.noop)
    (m : Mapping.t) =
  Telemetry.span telemetry ~cat:"te" "te.run" @@ fun () ->
  let sched = m.Mapping.schedule in
  let eligible =
    List.filter
      (is_dma_eligible ~defer_writebacks m)
      (Mapping.block_transfers m)
  in
  let raw =
    List.map
      (fun bt ->
        let bt_time = Cost.bt_cycles_per_issue m bt in
        let factor =
          if bt.Mapping.bytes_per_issue = 0 then 0.
          else float_of_int bt_time /. float_of_int bt.Mapping.bytes_per_issue
        in
        (bt, bt_time, factor, freedom_loops m bt))
      eligible
  in
  let ordered =
    match rank with
    | None -> sort_plans order raw
    | Some score ->
      (* A policy-supplied key overrides the built-in order; highest
         score plans first, stable like the built-in sorts. *)
      List.stable_sort
        (fun a b -> compare (score (stats_of b)) (score (stats_of a)))
        raw
  in
  (* Drains only compete for whatever slack the prefetches leave:
     fetches keep their relative order and go first. *)
  let ordered =
    let fetches, drains =
      List.partition
        (fun ((bt : Mapping.block_transfer), _, _, _) ->
          not bt.Mapping.is_writeback)
        ordered
    in
    fetches @ drains
  in
  (* Extensions already granted consume on-chip space for everyone that
     follows: thread the extra-buffer list through the greedy pass. *)
  let extend (extras, plans, priority) (bt, bt_time, factor, freedom) =
    let c = bt.Mapping.bt_candidate in
    (* Extending across the refresh loop itself only needs room for
       the next window's new part when transfers are delta-sized; any
       further (outer-loop) step re-primes a whole window. *)
    let buffer_bytes iter =
      let sliding =
        m.Mapping.transfer_mode = Candidate.Delta
        && c.Candidate.refresh_iter = Some iter
      in
      if sliding then max 1 c.Candidate.delta_bytes_per_issue
      else c.Candidate.footprint_bytes
    in
    let buffer_for iter =
      ( bt.Mapping.dst_layer,
        {
          Occupancy.label =
            Printf.sprintf "%s#te@%s" bt.Mapping.bt_id iter;
          interval = Schedule.loop_interval sched iter;
          bytes = buffer_bytes iter;
        } )
    in
    let rec walk extras granted hidden = function
      | [] ->
        let limit = if granted = [] then Not_extendable else Dependency_bound in
        (extras, List.rev granted, hidden, limit)
      | iter :: rest ->
        let candidate_extras = buffer_for iter :: extras in
        if not (Mapping.occupancy_ok ~policy ~extra:candidate_extras m) then
          (extras, List.rev granted, hidden, Size_bound)
        else begin
          let cycles = Cost.loop_iteration_cycles m ~iter in
          let hidden = hidden + cycles in
          if hidden >= bt_time then
            (candidate_extras, List.rev (iter :: granted), bt_time,
             Fully_hidden)
          else walk candidate_extras (iter :: granted) hidden rest
        end
    in
    let extras, extended, hidden, limit =
      if bt_time = 0 then (extras, [], 0, Fully_hidden)
      else if freedom = [] then (extras, [], 0, Not_extendable)
      else walk extras [] 0 freedom
    in
    let plan =
      {
        bt;
        bt_time;
        sort_factor = factor;
        freedom;
        extended;
        extra_buffers = List.length extended;
        hidden_cycles = min hidden bt_time;
        limit;
        dma_priority = priority;
      }
    in
    (* One event per block transfer: the TE decision and everything
       that shaped it, the per-BT attribution the analytic report
       aggregates away. *)
    Telemetry.instant telemetry ~cat:"te" "te.plan"
      ~args:(fun () ->
        [ ("bt", Telemetry.Str bt.Mapping.bt_id);
          ("bt_time", Telemetry.Int plan.bt_time);
          ("sort_factor", Telemetry.Float plan.sort_factor);
          ("freedom", Telemetry.Str (String.concat "," plan.freedom));
          ("granted", Telemetry.Str (String.concat "," plan.extended));
          ("extra_buffers", Telemetry.Int plan.extra_buffers);
          ("hidden_cycles", Telemetry.Int plan.hidden_cycles);
          ("limit", Telemetry.Str (limit_label plan.limit));
          ("dma_priority", Telemetry.Int plan.dma_priority);
          ("writeback", Telemetry.Bool bt.Mapping.is_writeback) ]);
    (extras, plan :: plans, priority + 1)
  in
  let _, plans, _ = List.fold_left extend ([], [], 0) ordered in
  { plans = List.rev plans; order }

let hidden_per_issue schedule bt_id =
  match
    List.find_opt (fun p -> p.bt.Mapping.bt_id = bt_id) schedule.plans
  with
  | Some p -> p.hidden_cycles
  | None -> 0

let evaluate m schedule =
  Cost.evaluate ~hidden_per_issue:(hidden_per_issue schedule) m

let total_hidden_cycles schedule =
  List.fold_left
    (fun acc p -> acc + (p.bt.Mapping.issues * p.hidden_cycles))
    0 schedule.plans

let pp_limit ppf l = Fmt.string ppf (limit_label l)

let pp_plan ppf p =
  Fmt.pf ppf
    "%s: time %d, factor %.3f, freedom [%a], extended [%a], hidden %d/%d \
     (%a, prio %d)"
    p.bt.Mapping.bt_id p.bt_time p.sort_factor
    Fmt.(list ~sep:comma string)
    p.freedom
    Fmt.(list ~sep:comma string)
    p.extended p.hidden_cycles p.bt_time pp_limit p.limit p.dma_priority
