(** Mappings: the output of the selection-and-assignment step.

    A mapping fixes, for every static access, which copy candidate (if
    any) serves it and on which layer each buffer of its copy chain
    lives; arrays themselves may also be promoted from the off-chip
    store to an on-chip layer. From a mapping the block transfers, the
    layer occupancies and the cost breakdown all follow. *)

(** One buffer of a copy chain. *)
type chain_link = {
  candidate : Mhla_reuse.Candidate.t;
  layer : int;  (** on-chip level holding the buffer *)
}

(** How an access is served. *)
type placement =
  | Direct  (** straight from the layer holding the array *)
  | Chain of chain_link list
      (** innermost buffer first: link 0 serves the CPU accesses, link
          [i] is refilled from link [i+1], the last link from the
          array's layer. Levels strictly decrease and layers strictly
          increase along the list. *)

type reuse = {
  infos : Mhla_reuse.Analysis.info list;
  schedule : Mhla_lifetime.Schedule.t;
}
(** The size-independent part of building a mapping: reuse analysis and
    the program timeline. Both depend only on the program, so one
    {!precompute} can be shared across every hierarchy of a budget
    sweep instead of being re-derived per point. *)

(** Declared after {!reuse} so the shared [infos]/[schedule] labels
    resolve to [t] in unannotated client code. *)
type t = private {
  program : Mhla_ir.Program.t;
  hierarchy : Mhla_arch.Hierarchy.t;
  transfer_mode : Mhla_reuse.Candidate.transfer_mode;
  infos : Mhla_reuse.Analysis.info list;
  placements : (Mhla_reuse.Analysis.access_ref * placement) list;
  array_layers : (string * int) list;
      (** arrays promoted on-chip; absent = off-chip store *)
  schedule : Mhla_lifetime.Schedule.t;  (** cached program timeline *)
}

val precompute : Mhla_ir.Program.t -> reuse
(** Run {!Mhla_reuse.Analysis.analyze} and
    {!Mhla_lifetime.Schedule.of_program} once. *)

val direct :
  ?transfer_mode:Mhla_reuse.Candidate.transfer_mode ->
  ?reuse:reuse ->
  Mhla_ir.Program.t ->
  Mhla_arch.Hierarchy.t ->
  t
(** The out-of-the-box mapping: every access Direct, every array
    off-chip. [transfer_mode] defaults to [Full]. [reuse] (when given)
    must be {!precompute} of the same program; it skips the analysis
    and scheduling passes. *)

val with_placement : t -> Mhla_reuse.Analysis.access_ref -> placement -> t
(** Functional update; validates the chain shape.
    @raise Mhla_util.Error.Error for an unknown access or malformed chain. *)

val with_array_layer : t -> array:string -> layer:int option -> t
(** Promote an array to an on-chip layer ([Some level]) or demote it
    back off-chip ([None]).
    @raise Mhla_util.Error.Error for an unknown array or the off-chip
    level. *)

val placement_of : t -> Mhla_reuse.Analysis.access_ref -> placement

val array_layer : t -> string -> int
(** The level holding the array (the off-chip level by default). *)

val serving_layer : t -> Mhla_reuse.Analysis.access_ref -> int
(** The level CPU accesses of this access actually hit. *)

(** A derived block transfer stream between two layers. *)
type block_transfer = {
  bt_id : string;
  bt_candidate : Mhla_reuse.Candidate.t;
  src_layer : int;
  dst_layer : int;
  issues : int;
  bytes_per_issue : int;  (** average over issues, honouring the mode *)
  total_bytes : int;
  is_writeback : bool;
      (** [true] when the stream drains a written buffer outward *)
}

val block_transfers : t -> block_transfer list
(** All copy-chain refills and write-backs, plus the initial fill /
    final drain of arrays promoted on-chip. Deterministic order. *)

(** {2 Per-unit transfer derivation}

    [block_transfers] composes the three functions below; the
    incremental cost engine calls them directly to rebuild only the
    transfers a move invalidated. *)

val transfers_of_chain :
  transfer_mode:Mhla_reuse.Candidate.transfer_mode ->
  home:int ->
  chain_link list ->
  block_transfer list
(** The refill/write-back streams of one placement chain, innermost
    link first; [home] is the level holding the owning array (the
    outermost link's source). *)

val promoted_transfers :
  t -> array:string -> level:int -> block_transfer list
(** The whole-array fill/drain streams of one promoted array. Depends
    on the array's accesses, not on any placement. *)

val bt_dedupe_key : block_transfer -> string * bool * int * int
(** [(share_key, is_write, src, dst)] — two chain transfers with equal
    keys move the same data in the same rhythm and are counted once
    (first occurrence wins, in [block_transfers] order). *)

val layer_blocks : t -> level:int -> Mhla_lifetime.Occupancy.block list
(** The buffers and promoted arrays living on one on-chip layer, with
    their lifetimes (for in-place sizing). *)

val occupancy_ok :
  ?policy:Mhla_lifetime.Occupancy.policy ->
  ?extra:(int * Mhla_lifetime.Occupancy.block) list ->
  t ->
  bool
(** Every on-chip layer within capacity; [extra] adds transient blocks
    (e.g. TE double buffers) as [(level, block)]. [policy] defaults to
    [In_place]. *)

val with_hierarchy : t -> Mhla_arch.Hierarchy.t -> t
(** The same placements evaluated against another platform with the
    same number of levels — used to stress TE under a tighter size
    constraint than the assignment used.
    @raise Mhla_util.Error.Error when the level counts differ. *)

val pp : t Fmt.t
