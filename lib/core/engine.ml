module Analysis = Mhla_reuse.Analysis
module Hierarchy = Mhla_arch.Hierarchy
module Telemetry = Mhla_obs.Telemetry

type move =
  | Set_placement of Analysis.access_ref * Mapping.placement
  | Set_array of string * int option

type stats = {
  probes : int;
  commits : int;
  contribs_reused : int;
  contribs_recomputed : int;
  entries_invalidated : int;
}

(* One cached block-transfer contribution, exactly the tuple
   [Cost.bt_contribution] returns (hidden = 0: the searches never
   overlap transfers — that is TE's job, after assignment). *)
type contrib = {
  c_stall : int;
  c_setup : int;
  c_energy : float;
  c_dma : float;
}

(* The dedupe key is computed and interned to a dense int id once per
   cached transfer (at refresh time); the totals fold then dedupes with
   a generation-stamped array instead of hashing keys per probe. *)
type cached_bt = { bt : Mapping.block_transfer; key_id : int; contrib : contrib }

type entry = {
  info : Analysis.info;
  mutable placement : Mapping.placement;
  mutable acc_stall : int;
  mutable acc_energy : float;
  mutable chain_bts : cached_bt list;
  (* Contributions memoised per (placement, home layer): a (placement,
     home) pair fully determines this entry's terms, and the searches
     probe the same physically-shared alternative placements over and
     over (greedy re-probes every move each round), so a revisit is a
     pointer-compare lookup with no hashing or key allocation. Bounded
     by [memo_cap]; stale entries (placements the caller no longer
     holds) age out at the tail. *)
  mutable memo : (Mapping.placement * int * int * float * cached_bt list) list;
}

let memo_cap = 64

type counters = {
  mutable n_probes : int;
  mutable n_commits : int;
  mutable n_reused : int;
  mutable n_recomputed : int;
  mutable n_invalidated : int;
}

type t = {
  objective : Cost.objective;
  mutable mapping : Mapping.t;
  entries : entry array;  (* in [mapping.infos] order *)
  index : (Analysis.access_ref, int) Hashtbl.t;
  by_array : (string, int list) Hashtbl.t;
  (* Mirror of [mapping.array_layers], updated with the same
     remove-then-prepend discipline as [Mapping.with_array_layer]: the
     promoted fill/drain transfers are folded in this list's order, and
     float sums are order-sensitive. *)
  mutable array_layers : (string * int) list;
  promoted : (string * int, cached_bt list) Hashtbl.t;
  (* Key interning and the stamp array behind the totals dedupe. A
     stamp equal to the current generation means "already folded this
     round" — bumping the generation clears the set in O(1). *)
  key_ids : (string * bool * int * int, int) Hashtbl.t;
  mutable stamps : int array;
  mutable generation : int;
  main : int;
  dma : Mhla_arch.Dma.t option;
  compute : int;
  counters : counters;
  telemetry : Telemetry.t;
}

let array_layer t array =
  match List.assoc_opt array t.array_layers with
  | Some level -> level
  | None -> t.main

(* [==] is exact for [Direct] (an immediate) and sound for chains: a
   physically-equal chain trivially has equal candidates and layers.
   Distinct-but-structurally-equal chains just miss and recompute. *)
let memo_find memo placement home =
  let rec go = function
    | [] -> None
    | (p, h, stall, energy, bts) :: rest ->
      if p == placement && h = home then Some (stall, energy, bts)
      else go rest
  in
  go memo

let intern_key t key =
  match Hashtbl.find_opt t.key_ids key with
  | Some id -> id
  | None ->
    let id = Hashtbl.length t.key_ids in
    Hashtbl.replace t.key_ids key id;
    if id >= Array.length t.stamps then begin
      let grown = Array.make (max 16 (2 * (id + 1))) 0 in
      Array.blit t.stamps 0 grown 0 (Array.length t.stamps);
      t.stamps <- grown
    end;
    id

let bt_with_contrib t bt =
  let c_stall, c_setup, c_energy, c_dma =
    Cost.bt_contribution ~dma:t.dma t.mapping bt
  in
  t.counters.n_recomputed <- t.counters.n_recomputed + 1;
  {
    bt;
    key_id = intern_key t (Mapping.bt_dedupe_key bt);
    contrib = { c_stall; c_setup; c_energy; c_dma };
  }

(* Bring [e]'s cached terms in line with its placement and its array's
   current home layer, through the per-entry memo. *)
let refresh t (e : entry) =
  let home = array_layer t e.info.Analysis.array in
  match memo_find e.memo e.placement home with
  | Some (stall, energy, bts) ->
    e.acc_stall <- stall;
    e.acc_energy <- energy;
    e.chain_bts <- bts
  | None ->
    let level =
      match e.placement with
      | Mapping.Direct -> home
      | Mapping.Chain (link :: _) -> link.Mapping.layer
      | Mapping.Chain [] -> assert false
    in
    let stall, energy = Cost.access_contribution t.mapping ~level e.info in
    e.acc_stall <- stall;
    e.acc_energy <- energy;
    t.counters.n_recomputed <- t.counters.n_recomputed + 1;
    e.chain_bts <-
      (match e.placement with
      | Mapping.Direct -> []
      | Mapping.Chain links ->
        List.map (bt_with_contrib t)
          (Mapping.transfers_of_chain
             ~transfer_mode:t.mapping.Mapping.transfer_mode ~home links));
    let kept =
      if List.length e.memo >= memo_cap then
        List.filteri (fun i _ -> i < memo_cap - 1) e.memo
      else e.memo
    in
    e.memo <- (e.placement, home, e.acc_stall, e.acc_energy, e.chain_bts) :: kept

let promoted_contribs t array level =
  match Hashtbl.find_opt t.promoted (array, level) with
  | Some cs -> cs
  | None ->
    let cs =
      List.map (bt_with_contrib t)
        (Mapping.promoted_transfers t.mapping ~array ~level)
    in
    Hashtbl.replace t.promoted (array, level) cs;
    cs

let indices_of_array t array =
  Option.value ~default:[] (Hashtbl.find_opt t.by_array array)

(* Mutate the cached state by [move] and return the closure undoing
   it. The [mapping] field itself is untouched — [commit] advances it
   separately, through the validating [Mapping] updates. *)
let apply_internal t move =
  match move with
  | Set_placement (r, p) ->
    let i = Hashtbl.find t.index r in
    let e = t.entries.(i) in
    let old_p = e.placement in
    let old_stall = e.acc_stall in
    let old_energy = e.acc_energy in
    let old_bts = e.chain_bts in
    e.placement <- p;
    refresh t e;
    fun () ->
      e.placement <- old_p;
      e.acc_stall <- old_stall;
      e.acc_energy <- old_energy;
      e.chain_bts <- old_bts
  | Set_array (array, layer) ->
    let old_layers = t.array_layers in
    let removed = List.remove_assoc array t.array_layers in
    t.array_layers <-
      (match layer with
      | None -> removed
      | Some level -> (array, level) :: removed);
    let dirty = indices_of_array t array in
    t.counters.n_invalidated <- t.counters.n_invalidated + List.length dirty;
    Telemetry.count t.telemetry ~cat:"engine" "engine.entries_invalidated"
      (List.length dirty);
    let saved =
      List.map
        (fun i ->
          let e = t.entries.(i) in
          (e, e.acc_stall, e.acc_energy, e.chain_bts))
        dirty
    in
    (* Direct accesses follow the array; chained ones keep their
       serving layer but refill from the new home. The memo covers
       both, keyed by the new home. *)
    List.iter (fun i -> refresh t t.entries.(i)) dirty;
    fun () ->
      t.array_layers <- old_layers;
      List.iter
        (fun (e, stall, energy, bts) ->
          e.acc_stall <- stall;
          e.acc_energy <- energy;
          e.chain_bts <- bts)
        saved

(* Re-fold the cached contributions in the exact order [Cost.evaluate]
   folds the real units: accesses in infos order; chain transfers in
   placements order, first [bt_dedupe_key] occurrence kept; promoted
   fill/drain streams in [array_layers] order. Returns the breakdown
   and the number of contributions folded (for the hit/miss stats). *)
let totals t =
  let folded = ref 0 in
  let access_stall = ref 0 in
  let access_energy = ref 0. in
  Array.iter
    (fun e ->
      access_stall := !access_stall + e.acc_stall;
      access_energy := !access_energy +. e.acc_energy;
      incr folded)
    t.entries;
  let stall = ref 0 in
  let setup = ref 0 in
  let energy = ref 0. in
  let dma_energy = ref 0. in
  let add cached =
    let c = cached.contrib in
    stall := !stall + c.c_stall;
    setup := !setup + c.c_setup;
    energy := !energy +. c.c_energy;
    dma_energy := !dma_energy +. c.c_dma;
    incr folded
  in
  t.generation <- t.generation + 1;
  let gen = t.generation in
  Array.iter
    (fun e ->
      List.iter
        (fun cached ->
          if t.stamps.(cached.key_id) <> gen then begin
            t.stamps.(cached.key_id) <- gen;
            add cached
          end)
        e.chain_bts)
    t.entries;
  List.iter
    (fun (array, level) -> List.iter add (promoted_contribs t array level))
    t.array_layers;
  let breakdown =
    {
      Cost.compute_cycles = t.compute;
      access_stall_cycles = !access_stall;
      transfer_stall_cycles = !stall;
      dma_setup_cycles = !setup;
      total_cycles = t.compute + !access_stall + !stall + !setup;
      access_energy_pj = !access_energy;
      transfer_energy_pj = !energy;
      dma_energy_pj = !dma_energy;
      total_energy_pj = !access_energy +. !energy +. !dma_energy;
    }
  in
  (breakdown, !folded)

let create ?(telemetry = Telemetry.noop) ~objective (m : Mapping.t) =
  let entries =
    Array.of_list
      (List.map
         (fun (info : Analysis.info) ->
           {
             info;
             placement = Mapping.placement_of m info.Analysis.ref_;
             acc_stall = 0;
             acc_energy = 0.;
             chain_bts = [];
             memo = [];
           })
         m.Mapping.infos)
  in
  let index = Hashtbl.create (Array.length entries) in
  let by_array = Hashtbl.create 8 in
  Array.iteri
    (fun i e ->
      Hashtbl.replace index e.info.Analysis.ref_ i;
      let arr = e.info.Analysis.array in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_array arr) in
      Hashtbl.replace by_array arr (prev @ [ i ]))
    entries;
  let t =
    {
      objective;
      mapping = m;
      entries;
      index;
      by_array;
      array_layers = m.Mapping.array_layers;
      promoted = Hashtbl.create 8;
      key_ids = Hashtbl.create 16;
      stamps = Array.make 16 0;
      generation = 0;
      main = Hierarchy.main_memory_level m.Mapping.hierarchy;
      dma =
        (if Hierarchy.has_dma m.Mapping.hierarchy then
           Some (Hierarchy.dma_exn m.Mapping.hierarchy)
         else None);
      compute = Mhla_ir.Program.total_work_cycles m.Mapping.program;
      counters =
        {
          n_probes = 0;
          n_commits = 0;
          n_reused = 0;
          n_recomputed = 0;
          n_invalidated = 0;
        };
      telemetry;
    }
  in
  Telemetry.span telemetry ~cat:"engine" "engine.create" (fun () ->
      Array.iter (refresh t) t.entries);
  t

let mapping t = t.mapping

let breakdown t = fst (totals t)

let objective_value t = Cost.scalar t.objective (breakdown t)

let move_kind = function
  | Set_placement _ -> "set_placement"
  | Set_array _ -> "set_array"

let probe t move =
  Telemetry.span t.telemetry ~cat:"engine" "engine.probe"
    ~args:(fun () -> [ ("move", Telemetry.Str (move_kind move)) ])
    (fun () ->
      t.counters.n_probes <- t.counters.n_probes + 1;
      let before = t.counters.n_recomputed in
      let undo = apply_internal t move in
      let b, folded = totals t in
      undo ();
      let recomputed = t.counters.n_recomputed - before in
      let reused = max 0 (folded - recomputed) in
      t.counters.n_reused <- t.counters.n_reused + reused;
      if Telemetry.enabled t.telemetry then begin
        Telemetry.count t.telemetry ~cat:"engine" "engine.probes" 1;
        Telemetry.count t.telemetry ~cat:"engine" "engine.cache_hits" reused;
        Telemetry.count t.telemetry ~cat:"engine" "engine.cache_misses"
          recomputed
      end;
      Cost.scalar t.objective b)

let commit t move =
  Telemetry.span t.telemetry ~cat:"engine" "engine.commit"
    ~args:(fun () -> [ ("move", Telemetry.Str (move_kind move)) ])
    (fun () ->
      (* Validate through the real [Mapping] update first: if it rejects
         the move we raise before any cached state is dirtied. *)
      let mapping' =
        match move with
        | Set_placement (r, p) -> Mapping.with_placement t.mapping r p
        | Set_array (a, l) ->
          Mapping.with_array_layer t.mapping ~array:a ~layer:l
      in
      ignore (apply_internal t move : unit -> unit);
      t.mapping <- mapping';
      t.counters.n_commits <- t.counters.n_commits + 1;
      Telemetry.count t.telemetry ~cat:"engine" "engine.commits" 1)

let stats t =
  {
    probes = t.counters.n_probes;
    commits = t.counters.n_commits;
    contribs_reused = t.counters.n_reused;
    contribs_recomputed = t.counters.n_recomputed;
    entries_invalidated = t.counters.n_invalidated;
  }
