(** The complete MHLA-with-TE flow and trade-off exploration.

    [run] reproduces the tool's pipeline: evaluate the out-of-the-box
    code, run selection & assignment (step 1), run Time Extensions
    (step 2), and compute the ideal 0-wait bound. [sweep] repeats the
    flow over a range of on-chip sizes — the "thorough trade-off
    exploration for different memory layer sizes" of the abstract. *)

type result = {
  program : Mhla_ir.Program.t;
  hierarchy : Mhla_arch.Hierarchy.t;
  baseline : Cost.breakdown;  (** everything off-chip, no copies *)
  assign : Assign.result;  (** step 1 outcome *)
  te : Prefetch.schedule;  (** step 2 outcome *)
  after_assign : Cost.breakdown;
  after_te : Cost.breakdown;
  ideal : Cost.breakdown;  (** step-1 mapping, transfers fully hidden *)
}

(** Which step-1 search engine to use. [First_improvement] is
    {!Assign.greedy} with first-improving (rather than steepest)
    descent — one of the move-selection policies the policy layer
    races. *)
type search =
  | Greedy
  | First_improvement
  | Annealing of { seed : int64; iterations : int }

val run :
  ?config:Assign.config ->
  ?order:Prefetch.order ->
  ?rank:(Prefetch.bt_stats -> float) ->
  ?search:search ->
  ?defer_writebacks:bool ->
  ?telemetry:Mhla_obs.Telemetry.t ->
  ?reuse:Mapping.reuse ->
  ?checkpoint:(unit -> unit) ->
  ?on_commit:(Assign.move -> unit) ->
  Mhla_ir.Program.t ->
  Mhla_arch.Hierarchy.t ->
  result
(** [search] defaults to [Greedy]; [rank] (default absent) overrides
    [order] with a policy-supplied TE ranking (see {!Prefetch.run});
    [defer_writebacks] (default [false])
    also lets TE hide buffer drains (see {!Prefetch.run}). [reuse]
    shares a {!Mapping.precompute} of the same program (the sweep
    hoists one across all its points). [telemetry] (default noop) wraps
    each pipeline stage in a span ([explore.run] around
    [explore.baseline] / [explore.assign] / [explore.te] /
    [explore.evaluate]) and is passed down to {!Assign} and
    {!Prefetch}; it never changes the result. [checkpoint] is handed to
    the step-1 search (see {!Assign.greedy}): a deadline guard may
    raise from it to abandon the run between search steps. [on_commit]
    observes every committed step-1 move (see {!Assign.greedy}) — the
    hook [--verify-live] keeps its incremental verifier current
    through; it must not change the search's behaviour. *)

(** Normalised views used by the paper's figures (baseline = 1.0). *)

val time_after_assign : result -> float

val time_after_te : result -> float

val time_ideal : result -> float

val energy_after_assign : result -> float

val energy_after_te : result -> float

val assign_time_gain_percent : result -> float
(** Step-1 execution-time reduction vs. out-of-the-box (Figure 2's
    40–60 %). *)

val te_extra_gain_percent : result -> float
(** Step-2 reduction relative to the step-1 time (the paper's "up to
    33 %"). *)

val energy_gain_percent : result -> float
(** Step-1 energy reduction (Figure 3's up to 70 %). *)

type sweep_point = { onchip_bytes : int; point_result : result }

val sweep :
  ?config:Assign.config ->
  ?order:Prefetch.order ->
  ?dma:bool ->
  ?search:search ->
  ?jobs:int ->
  ?telemetry:Mhla_obs.Telemetry.t ->
  ?checkpoint:(unit -> unit) ->
  sizes:int list ->
  Mhla_ir.Program.t ->
  sweep_point list
(** Two-level platforms of each size ([dma] defaults to [true]).
    [sizes] is deduped and sorted ascending before fanning out, so a
    duplicated size never burns a worker domain on identical work;
    points come back in that normalised order.

    Points are independent, so they run on a {!Mhla_util.Domain_pool}
    of [jobs] worker domains (default
    [Domain.recommended_domain_count]); the reuse analysis is computed
    once and shared. Results are identical for every [jobs] value —
    [jobs:1] is plain [List.map].

    [telemetry] (default noop) gives each worker domain its own child
    sink (one [sweep.worker] span per worker, a [sweep.point] span with
    the on-chip size around every point, and the full per-point event
    stream inside it); the children are merged back into the parent
    deterministically in worker order after the join, so the merged
    event multiset is identical for every [jobs] value.

    [checkpoint] is passed to every point's {!run}; it must be safe to
    call from any worker domain (the deadline guards built on
    {!Mhla_util.Domain_pool} only read a pre-computed deadline and the
    clock, which is). A raise abandons that point; unstarted points are
    then skipped at the pool's cancellation check. *)

val pareto_energy : sweep_point list -> sweep_point Mhla_util.Pareto.t
(** Frontier of (on-chip bytes, energy after step 1). *)

val pareto_cycles : sweep_point list -> sweep_point Mhla_util.Pareto.t
(** Frontier of (on-chip bytes, cycles after step 2). *)

(** {2 Per-layer budget-vector exploration}

    The full design-space search the paper's "thorough trade-off
    exploration" calls for: instead of one scalar on-chip size, every
    on-chip level gets its own budget axis, and the surface explored
    is (on-chip size, execution time, energy) — three objectives, all
    minimised. *)

type pareto_point = {
  budgets : int list;  (** bytes per on-chip level, innermost first *)
  point_result : result;  (** the full flow at that platform *)
}

type pareto_stats = {
  grid_points : int;  (** budget vectors in the grid *)
  evaluated : int;  (** vectors actually solved *)
  pruned : int;  (** vectors skipped by the bound test *)
  deadline_skipped : int;  (** vectors abandoned after expiry *)
  regions : int;  (** branch-and-bound work units *)
  regions_pruned : int;  (** regions discarded wholesale *)
}

type pareto_outcome = {
  frontier : pareto_point Mhla_util.Pareto.Nd.t;
  stats : pareto_stats;
  partial : bool;
      (** [true] when a deadline expired mid-search: the frontier is
          the best surface seen so far, not the complete one *)
}

val pareto_objectives : pareto_point -> float array
(** [[| total on-chip bytes; cycles after TE; energy after TE |]] —
    the vector the frontier orders points by. *)

val pareto :
  ?config:Assign.config ->
  ?order:Prefetch.order ->
  ?dma:bool ->
  ?search:search ->
  ?jobs:int ->
  ?telemetry:Mhla_obs.Telemetry.t ->
  ?checkpoint:(unit -> unit) ->
  ?reuse:Mapping.reuse ->
  ?on_point:(pareto_point -> unit) ->
  axes:int list list ->
  Mhla_ir.Program.t ->
  pareto_outcome
(** Branch-and-bound over the budget grid of [axes] (one candidate
    size list per on-chip level, see
    {!Mhla_arch.Presets.budget_grid}); each explored vector runs the
    full {!run} flow on the {!Mhla_arch.Presets.multi_level} platform
    it names, sharing one reuse precompute.

    Pruning: a region (a run of the grid along the innermost axis) is
    discarded when some already-evaluated point has strictly smaller
    total size and beats the region's {!Cost.lower_bound} at its min
    corner on both cycles and energy — which proves every point of the
    region strictly dominated, whatever the search would return for
    it. Evaluated points are shared across the {!Mhla_util.Domain_pool}
    workers through an atomic frontier snapshot, so later regions
    prune against everything already known. Because pruned points are
    {e provably} off the frontier, the returned frontier — folded from
    the evaluated points in canonical grid order, first writer winning
    ties — is bit-identical for every [jobs] value; only [stats] (how
    much was pruned, a timing-dependent quantity) may differ between
    runs with [jobs > 1].

    [on_point] fires from worker domains as each point is solved (the
    anytime emission hook: combine with {!pareto_objectives} to stream
    frontier updates); it must be thread-safe. [telemetry] records a
    [pareto.region] span per region, [pareto.point] /
    [pareto.region_pruned] instants, and each worker's stream under
    its own child sink; with [jobs > 1] the pruning events are
    timing-dependent, unlike {!sweep}'s.

    [checkpoint] (typically a deadline guard) is passed to every
    point's {!run}; a raise with kind [Deadline] abandons the search
    {e gracefully}: remaining points are skipped, [partial] is set,
    and the best-so-far surface is returned instead of the exception
    propagating. Other exceptions propagate. *)
