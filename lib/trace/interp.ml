module Error = Mhla_util.Error

type event = {
  stmt : string;
  array : string;
  direction : Mhla_ir.Access.direction;
  address : int;
  element_bytes : int;
}

type layout = (string * int) list

let align8 n = (n + 7) land lnot 7

let layout (program : Mhla_ir.Program.t) =
  let place (next, acc) (a : Mhla_ir.Array_decl.t) =
    let base = align8 next in
    (base + Mhla_ir.Array_decl.size_bytes a, (a.Mhla_ir.Array_decl.name, base) :: acc)
  in
  let _, placed =
    List.fold_left place (0, []) program.Mhla_ir.Program.arrays
  in
  List.rev placed

let find_decl program array =
  match Mhla_ir.Program.find_array program array with
  | Some d -> d
  | None -> Error.invalidf ~context:"Interp" "unknown array %s" array

(* Row-major offset with bounds checking per dimension. *)
let element_offset (decl : Mhla_ir.Array_decl.t) ~indices =
  let rec walk acc dims indices =
    match (dims, indices) with
    | [], [] -> acc
    | dim :: dims, idx :: indices ->
      if idx < 0 || idx >= dim then
        Error.invalidf ~context:"Interp" "index %d out of bounds 0..%d in %s"
          idx (dim - 1) decl.Mhla_ir.Array_decl.name;
      walk ((acc * dim) + idx) dims indices
    | _, _ ->
      Error.invalidf ~context:"Interp" "rank mismatch on %s"
        decl.Mhla_ir.Array_decl.name
  in
  walk 0 decl.Mhla_ir.Array_decl.dims indices

let address layout program ~array ~indices =
  let decl = find_decl program array in
  let base =
    match List.assoc_opt array layout with
    | Some b -> b
    | None -> Error.invalidf ~context:"Interp" "array not in layout: %s" array
  in
  base + (element_offset decl ~indices * decl.Mhla_ir.Array_decl.element_bytes)

let fold ?only_stmt (program : Mhla_ir.Program.t) ~init ~f =
  let bases = layout program in
  let env = Hashtbl.create 16 in
  let lookup name =
    match Hashtbl.find_opt env name with
    | Some v -> v
    | None -> Error.invalidf ~context:"Interp" "free iterator %s" name
  in
  let acc = ref init in
  let run_stmt (s : Mhla_ir.Stmt.t) =
    match only_stmt with
    | Some name when name <> s.Mhla_ir.Stmt.name -> ()
    | Some _ | None ->
      List.iter
        (fun (a : Mhla_ir.Access.t) ->
          let indices =
            List.map (fun e -> Mhla_ir.Affine.eval e ~env:lookup) a.Mhla_ir.Access.index
          in
          let address =
            address bases program ~array:a.Mhla_ir.Access.array ~indices
          in
          let decl = find_decl program a.Mhla_ir.Access.array in
          acc :=
            f !acc
              {
                stmt = s.Mhla_ir.Stmt.name;
                array = a.Mhla_ir.Access.array;
                direction = a.Mhla_ir.Access.direction;
                address;
                element_bytes = decl.Mhla_ir.Array_decl.element_bytes;
              })
        s.Mhla_ir.Stmt.accesses
  in
  let rec run_node = function
    | Mhla_ir.Program.Stmt s -> run_stmt s
    | Mhla_ir.Program.Loop l ->
      for it = 0 to l.Mhla_ir.Program.trip - 1 do
        Hashtbl.replace env l.Mhla_ir.Program.iter it;
        List.iter run_node l.Mhla_ir.Program.body
      done;
      Hashtbl.remove env l.Mhla_ir.Program.iter
  in
  List.iter run_node program.Mhla_ir.Program.body;
  !acc

let count_events ?only_stmt program =
  fold ?only_stmt program ~init:0 ~f:(fun n _ -> n + 1)

(* Grouped event counts, in first-seen order. The keys come from the
   event stream itself, so a statement or array the execution never
   reaches simply does not appear. *)
let count_grouped key program =
  let counts =
    fold program ~init:[] ~f:(fun acc event ->
        let k = key event in
        match List.assoc_opt k acc with
        | Some n -> (k, n + 1) :: List.remove_assoc k acc
        | None -> (k, 1) :: acc)
  in
  List.rev counts

let count_by_stmt program = count_grouped (fun e -> e.stmt) program

let count_by_array program = count_grouped (fun e -> e.array) program

(* Sweep the statement's own iteration space (pinning the iterators in
   [fix]) and collect the distinct addresses of one access. *)
let touched_addresses program ~stmt ~access_index ~fix =
  let bases = layout program in
  let ctx =
    match Mhla_ir.Program.find_context program ~stmt with
    | Some c -> c
    | None -> Error.invalidf ~context:"Interp" "unknown statement %s" stmt
  in
  let access =
    match
      List.nth_opt ctx.Mhla_ir.Program.stmt.Mhla_ir.Stmt.accesses access_index
    with
    | Some a -> a
    | None -> Error.invalidf ~context:"Interp" "access index out of range"
  in
  let loops = ctx.Mhla_ir.Program.loops in
  let addresses = Hashtbl.create 256 in
  let rec sweep env = function
    | [] ->
      let lookup name =
        match List.assoc_opt name env with
        | Some v -> v
        | None -> 0
      in
      let indices =
        List.map
          (fun e -> Mhla_ir.Affine.eval e ~env:lookup)
          access.Mhla_ir.Access.index
      in
      Hashtbl.replace addresses
        (address bases program ~array:access.Mhla_ir.Access.array ~indices)
        ()
    | (iter, trip) :: rest -> (
      match List.assoc_opt iter fix with
      | Some v -> sweep ((iter, v) :: env) rest
      | None ->
        for it = 0 to trip - 1 do
          sweep ((iter, it) :: env) rest
        done)
  in
  sweep [] loops;
  List.sort compare (Hashtbl.fold (fun addr () acc -> addr :: acc) addresses [])
