module Error = Mhla_util.Error
module Layer = Mhla_arch.Layer
module Hierarchy = Mhla_arch.Hierarchy

type config = { capacity_bytes : int; ways : int; line_bytes : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let config ~capacity_bytes ~ways ~line_bytes =
  let reject fmt = Error.invalidf ~context:"Cache.config" fmt in
  if not (is_power_of_two line_bytes) then
    reject "line_bytes must be a power of two";
  if ways < 1 then reject "ways must be >= 1";
  if capacity_bytes <= 0 || capacity_bytes mod (ways * line_bytes) <> 0 then
    reject "capacity must be a positive multiple of ways * line";
  { capacity_bytes; ways; line_bytes }

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  total_cycles : int;
  total_energy_pj : float;
}

let miss_rate s =
  if s.accesses = 0 then 0.
  else float_of_int s.misses /. float_of_int s.accesses

type slot = { mutable tag : int; mutable dirty : bool; mutable used : int }

(* Tag comparison costs grow with associativity: a standard first-order
   overhead of 15% extra energy per additional way. *)
let tag_energy_factor ways = 1.0 +. (0.15 *. float_of_int (ways - 1))

let simulate ?config:cfg ~hierarchy program =
  let on = Hierarchy.layer hierarchy 0 in
  let off = Hierarchy.main_memory hierarchy in
  if not (Layer.is_on_chip on) then
    Error.invalidf ~context:"Cache.simulate" "hierarchy has no on-chip layer";
  let cfg =
    match cfg with
    | Some c -> c
    | None ->
      let capacity =
        match on.Layer.capacity_bytes with
        | Some c -> c
        | None ->
          Error.invalidf ~context:"Cache.simulate" "unbounded on-chip layer"
      in
      (* Round down to a legal 2-way geometry. *)
      let line_bytes = 16 in
      let ways = 2 in
      let unit = ways * line_bytes in
      if capacity < unit then
        Error.capacityf ~context:"Cache.simulate"
          "on-chip capacity below one cache set";
      config ~capacity_bytes:(capacity / unit * unit) ~ways ~line_bytes
  in
  let sets = cfg.capacity_bytes / (cfg.ways * cfg.line_bytes) in
  let cache =
    Array.init sets (fun _ ->
        Array.init cfg.ways (fun _ -> { tag = -1; dirty = false; used = 0 }))
  in
  let clock = ref 0 in
  let hits = ref 0 in
  let misses = ref 0 in
  let evictions = ref 0 in
  let writebacks = ref 0 in
  let cycles = ref 0 in
  let energy = ref 0. in
  let tag_factor = tag_energy_factor cfg.ways in
  let hit_energy direction =
    tag_factor
    *.
    match direction with
    | Mhla_ir.Access.Read -> on.Layer.read_energy_pj
    | Mhla_ir.Access.Write -> on.Layer.write_energy_pj
  in
  let line_cycles = Layer.transfer_cycles off ~bytes:cfg.line_bytes in
  let access (e : Interp.event) =
    incr clock;
    let line = e.Interp.address / cfg.line_bytes in
    let set = cache.(line mod sets) in
    let tag = line / sets in
    cycles := !cycles + on.Layer.latency_cycles;
    energy := !energy +. hit_energy e.Interp.direction;
    let slot_hit = Array.exists (fun s -> s.tag = tag) set in
    if slot_hit then begin
      incr hits;
      Array.iter
        (fun s ->
          if s.tag = tag then begin
            s.used <- !clock;
            if e.Interp.direction = Mhla_ir.Access.Write then s.dirty <- true
          end)
        set
    end
    else begin
      incr misses;
      (* Choose the LRU victim. *)
      let victim = ref set.(0) in
      Array.iter (fun s -> if s.used < !victim.used then victim := s) set;
      let v = !victim in
      if v.tag >= 0 then incr evictions;
      let line_elements = max 1 (cfg.line_bytes / e.Interp.element_bytes) in
      if v.tag >= 0 && v.dirty then begin
        incr writebacks;
        cycles := !cycles + off.Layer.latency_cycles + line_cycles;
        energy :=
          !energy
          +. (float_of_int line_elements
             *. (Layer.burst_write_energy_pj off
                +. Layer.burst_read_energy_pj on))
      end;
      cycles := !cycles + off.Layer.latency_cycles + line_cycles;
      energy :=
        !energy
        +. (float_of_int line_elements
           *. (Layer.burst_read_energy_pj off
              +. Layer.burst_write_energy_pj on));
      v.tag <- tag;
      v.dirty <- e.Interp.direction = Mhla_ir.Access.Write;
      v.used <- !clock
    end
  in
  let accesses = Interp.fold program ~init:0 ~f:(fun n e -> access e; n + 1) in
  cycles := !cycles + Mhla_ir.Program.total_work_cycles program;
  {
    accesses;
    hits = !hits;
    misses = !misses;
    evictions = !evictions;
    writebacks = !writebacks;
    total_cycles = !cycles;
    total_energy_pj = !energy;
  }
