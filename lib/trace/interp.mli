(** Dynamic reference executor for the loop-nest IR.

    Walks the loop tree iteration by iteration and emits one event per
    array access with its exact linearised address. This is the ground
    truth the static analyses are checked against: access counts must
    match {!Mhla_ir.Program.total_accesses} and the distinct addresses
    touched inside a refresh window must be covered by the analytic
    footprint box. It also feeds the {!Cache} simulator.

    Cost is one closure call per dynamic access — fine for the bundled
    applications (up to ~10^7 events) but mind it on bigger inputs. *)

type event = {
  stmt : string;
  array : string;
  direction : Mhla_ir.Access.direction;
  address : int;  (** global byte address, see {!layout} *)
  element_bytes : int;
}

type layout = (string * int) list
(** Base byte address of every array, assigned in declaration order,
    8-byte aligned, starting at 0. *)

val layout : Mhla_ir.Program.t -> layout

val address :
  layout -> Mhla_ir.Program.t -> array:string -> indices:int list -> int
(** Row-major linearised byte address of one element.
    @raise Mhla_util.Error.Error for an unknown array, a rank mismatch or an
    out-of-bounds index. *)

val fold :
  ?only_stmt:string ->
  Mhla_ir.Program.t ->
  init:'a ->
  f:('a -> event -> 'a) ->
  'a
(** Execute the program in source order and fold over every access
    event. [only_stmt] restricts the events to one statement (the
    loops still iterate fully).
    @raise Mhla_util.Error.Error when a subscript leaves the array bounds —
    an IR modelling bug worth failing loudly on. *)

val count_events : ?only_stmt:string -> Mhla_ir.Program.t -> int

val count_by_stmt : Mhla_ir.Program.t -> (string * int) list
(** Dynamic access events grouped by statement name, in first-execution
    order. A statement whose loops never reach it (impossible for valid
    programs — trips are positive) would be absent. Each statement's
    count is [executions * length accesses], which is what
    {!Mhla_sim.Crosscheck.check_interp} asserts against the static
    model. *)

val count_by_array : Mhla_ir.Program.t -> (string * int) list
(** Dynamic access events grouped by array, in first-touch order; each
    count must equal {!Mhla_ir.Program.total_accesses} of that array. *)

val touched_addresses :
  Mhla_ir.Program.t ->
  stmt:string ->
  access_index:int ->
  fix:(string * int) list ->
  int list
(** The distinct addresses one access touches while the iterators in
    [fix] are pinned and all other enclosing loops sweep — the dynamic
    counterpart of a copy-candidate footprint. Sorted ascending. *)
