(** Trace-driven set-associative cache simulator.

    The comparison baseline the scratchpad literature always asks for:
    instead of MHLA's software-placed copies, give the CPU a hardware
    cache of the same capacity and replay the program's exact access
    trace through it. Misses stream whole lines from the off-chip
    layer; hits pay the on-chip access cost plus tag overhead.

    LRU replacement, write-allocate, write-back (dirty lines cost a
    line write-back on eviction). *)

type config = {
  capacity_bytes : int;
  ways : int;  (** associativity; 1 = direct-mapped *)
  line_bytes : int;  (** power of two *)
}

val config : capacity_bytes:int -> ways:int -> line_bytes:int -> config
(** @raise Mhla_util.Error.Error unless [line_bytes] is a power of two,
    [ways >= 1], and [capacity_bytes] is a positive multiple of
    [ways * line_bytes]. *)

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;  (** dirty evictions *)
  total_cycles : int;
  total_energy_pj : float;
}

val miss_rate : stats -> float

val simulate :
  ?config:config ->
  hierarchy:Mhla_arch.Hierarchy.t ->
  Mhla_ir.Program.t ->
  stats
(** Replay the program's full trace. [config] defaults to a 2-way
    cache with 16-byte lines sized to the hierarchy's on-chip
    capacity. The hierarchy provides the cost model: on-chip layer for
    hit cost (with a tag-lookup overhead per way), off-chip layer for
    line fills and write-backs; statement compute cycles are charged as
    in {!Mhla_core.Cost}.
    @raise Mhla_util.Error.Error when the hierarchy has no on-chip layer
    able to hold the cache. *)
