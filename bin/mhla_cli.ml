(* mhla — command-line front-end of the MHLA-with-Time-Extensions tool.

   Subcommands:
     list                      the nine bundled applications
     show APP                  print an application's loop-nest program
     run APP [--onchip N] ...  the full two-step flow with a report
                               (--policy/--model pick a search policy,
                               --portfolio races a field of them)
     emit APP                  pseudo-C of the transformed program
     sweep APP [--min/--max]   trade-off exploration over on-chip sizes
     pareto APP [--level ...]  budget-vector frontier over per-layer sizes
     figures                   regenerate the paper's Figures 2 and 3
     robustness APP [--seed]   fault-injected TE stall inflation (EXT-FAULT)
     simulate APP [--channels] event-driven DMA/bus sim vs analytic gain
                               (EXT-ESIM; --queue-depth/--shared-bus/...)
     check APP [--Werror] ...  static verification of the solver output
     fuzz [--seed] [--count]   differential fuzzing over generated programs
     fit [--seed] [--count]    fit the CC-pruning predictor on a corpus
     batch FILE.jsonl          solve a JSONL request file, one response each
     serve --stdin             daemon: JSONL requests in, responses out
     soak [--requests N]       chaos soak of the service (CI gate)

   Exit codes: 0 success, 1 check/soak found errors, 2 invalid input,
   3 unsupported request, 4 capacity exceeded, 70 internal error,
   75 deadline exceeded (see Mhla_util.Error). *)

module Apps = Mhla_apps.Registry
module Assign = Mhla_core.Assign
module Check = Mhla_analysis.Verify
module Check_pass = Mhla_analysis.Pass
module Cost = Mhla_core.Cost
module Error = Mhla_util.Error
module Explore = Mhla_core.Explore
module Policy = Mhla_policy.Policy
module Portfolio = Mhla_policy.Portfolio
module Predictor = Mhla_policy.Predictor
module Prefetch = Mhla_core.Prefetch
module Registry = Mhla_policy.Registry
module Report = Mhla_core.Report
module Table = Mhla_util.Table
module Telemetry = Mhla_obs.Telemetry
module Trace_export = Mhla_obs.Trace_export

(* Every subcommand body runs under [guarded]: a structured error is
   rendered with its context and hint on stderr and mapped to its
   kind's exit code, instead of escaping as an exception trace. *)
let guarded f =
  match Error.catch f with
  | Ok () -> ()
  | Result.Error e ->
    prerr_endline (Error.to_string e);
    exit (Error.exit_code e)

(* Name resolution lives in the registry (Apps.find_exn) so the CLI,
   benchmarks and tests all report unknown names the same way. *)
let find_app = Apps.find_exn

let validate_onchip onchip =
  match onchip with
  | Some b when b <= 0 ->
    Error.invalidf ~context:"mhla"
      ~hint:"pass a positive byte count to --onchip"
      "on-chip budget must be positive (got %d)" b
  | _ -> ()

(* --- shared options ---------------------------------------------------- *)

open Cmdliner

let app_arg =
  let doc = "Application name (see $(b,mhla list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let onchip_arg =
  let doc =
    "On-chip scratchpad size in bytes; defaults to the application's \
     calibrated budget."
  in
  Arg.(value & opt (some int) None & info [ "onchip" ] ~docv:"BYTES" ~doc)

let dma_arg =
  let doc =
    "Model a DMA transfer engine. Without one, Time Extensions are not \
     applicable (the tool runs step 1 only)."
  in
  Arg.(value & opt bool true & info [ "dma" ] ~docv:"BOOL" ~doc)

let objective_conv =
  Arg.enum
    [ ("energy", Cost.Energy); ("cycles", Cost.Cycles);
      ("energy-delay", Cost.Energy_delay) ]

let objective_arg =
  let doc = "Assignment objective: energy, cycles or energy-delay." in
  Arg.(
    value
    & opt objective_conv Assign.default_config.Assign.objective
    & info [ "objective" ] ~docv:"OBJ" ~doc)

let mode_conv =
  Arg.enum
    [ ("full", Mhla_reuse.Candidate.Full);
      ("delta", Mhla_reuse.Candidate.Delta) ]

let mode_arg =
  let doc =
    "Block-transfer accounting: full window refills or delta (sliding \
     window) refills."
  in
  Arg.(
    value
    & opt mode_conv Assign.default_config.Assign.transfer_mode
    & info [ "mode" ] ~docv:"MODE" ~doc)

(* The search name is taken as a plain string and resolved through the
   policy-layer registry inside [guarded], so an unknown spelling gets
   the structured Invalid_input diagnostic (exit 2) instead of
   cmdliner's usage error — and the CLI, the service wire and the tests
   accept exactly the same names. *)
let search_arg =
  let doc =
    "Step-1 search engine: greedy (steepest descent), first-improvement \
     or anneal."
  in
  Arg.(
    value & opt (some string) None & info [ "search" ] ~docv:"ENGINE" ~doc)

let resolve_search = function
  | None -> Explore.Greedy
  | Some s -> Registry.search_of_name ~context:"mhla" s

let deadline_arg =
  let doc =
    "Abandon the solve once it exceeds this wall-clock budget in \
     milliseconds; the run then exits with code 75 (the same request may \
     succeed with a larger budget)."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let checkpoint_of deadline_ms =
  Option.map
    (fun ms ->
      Mhla_service.Deadline.checkpoint ~context:"mhla"
        ~deadline_ns:(Mhla_service.Deadline.after_ms ms))
    deadline_ms

(* --- telemetry plumbing ------------------------------------------------ *)

(* One verbosity ladder shared by every subcommand: -q silences the
   report, -v expands it, --debug additionally streams each telemetry
   event to stderr as it is recorded. *)
type verbosity = Quiet | Normal | Verbose | Debug

let verbosity_term =
  let quiet =
    Arg.(value & flag
         & info [ "q"; "quiet" ] ~doc:"Suppress the report; errors only.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Full report.") in
  let debug =
    Arg.(value & flag
         & info [ "debug" ]
             ~doc:"Stream the tool's internal decisions (moves, TE plans, \
                   spans) to stderr as telemetry events.")
  in
  let combine q v d =
    if d then Debug else if v then Verbose else if q then Quiet else Normal
  in
  Term.(const combine $ quiet $ verbose $ debug)

let trace_arg =
  let doc =
    "Record a Chrome trace_event JSON file of the run (spans, counters, \
     decision events); load it in Perfetto (ui.perfetto.dev) or \
     chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Pick the sink a subcommand runs under: the zero-cost noop unless the
   user asked for a trace file or a --debug event stream. The trace file
   is written even when the run fails — the events up to the error are
   exactly what one wants to see then. *)
let with_telemetry ~trace ~verbosity f =
  match (trace, verbosity) with
  | None, (Quiet | Normal | Verbose) -> f Telemetry.noop
  | _ ->
    let on_event =
      match verbosity with
      | Debug -> Some (fun e -> Fmt.epr "%a@." Telemetry.pp_event e)
      | Quiet | Normal | Verbose -> None
    in
    let t = Telemetry.collector ?on_event () in
    Fun.protect
      ~finally:(fun () ->
        match trace with
        | None -> ()
        | Some file ->
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> Trace_export.write oc t))
      (fun () -> f t)

let config_of objective transfer_mode =
  { Assign.default_config with Assign.objective; transfer_mode }

let hierarchy_of (app : Mhla_apps.Defs.t) ~onchip ~dma =
  let onchip_bytes =
    match onchip with Some b -> b | None -> app.Mhla_apps.Defs.onchip_bytes
  in
  Mhla_arch.Presets.two_level ~dma ~onchip_bytes ()

(* --- subcommands ------------------------------------------------------- *)

let list_cmd =
  let run () =
    let table =
      Table.create
        ~columns:
          [ ("name", Table.Left); ("domain", Table.Left);
            ("budget", Table.Right); ("description", Table.Left) ]
    in
    List.iter
      (fun (app : Mhla_apps.Defs.t) ->
        Table.add_row table
          [ app.Mhla_apps.Defs.name; app.Mhla_apps.Defs.domain;
            string_of_int app.Mhla_apps.Defs.onchip_bytes ^ "B";
            app.Mhla_apps.Defs.description ])
      Apps.all;
    Table.print table
  in
  let doc = "List the nine bundled applications." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let show_cmd =
  let run name =
    guarded @@ fun () ->
    let app = find_app name in
    let program = Lazy.force app.Mhla_apps.Defs.program in
    Fmt.pr "%a@." Mhla_ir.Program.pp program;
    Fmt.pr "notes: %s@." app.Mhla_apps.Defs.notes
  in
  let doc = "Print an application's loop-nest model and provenance." in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ app_arg)

let json_arg =
  let doc = "Emit machine-readable JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

(* Suppression rules: an explicit --lint-config wins; otherwise
   ./.mhla-lint is honoured when present (the same convention across
   check, run --verify-live and the service front-ends), and no file
   means no suppression. *)
let load_suppress = function
  | Some file -> (
    try Mhla_analysis.Suppress.load file
    with Sys_error m ->
      Error.invalidf ~context:"mhla"
        ~hint:"pass --lint-config a readable suppression file" "%s" m)
  | None ->
    if Sys.file_exists ".mhla-lint" then
      Mhla_analysis.Suppress.load ".mhla-lint"
    else Mhla_analysis.Suppress.empty

let lint_config_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lint-config" ] ~docv:"FILE"
        ~doc:
          "Suppression rules, one $(b,CODE [field=value]...) per line \
           ($(b,#) comments). Matching diagnostics are dropped and \
           counted. Default: $(b,./.mhla-lint) when present.")

let verify_live_arg =
  Arg.(
    value & flag
    & info [ "verify-live" ]
        ~doc:
          "Run the incremental verifier alongside the solve (re-checked \
           after every committed move) and fail on any Error diagnostic. \
           The observer never feeds back: output is bit-identical to a \
           plain run.")

let load_model file =
  let content =
    let ic =
      try open_in file
      with Sys_error m ->
        Error.invalidf ~context:"mhla run"
          ~hint:"pass --model a JSON file written by mhla fit" "%s" m
    in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Predictor.of_json (Mhla_util.Json.parse_exn content)

let run_cmd =
  let run name onchip dma objective mode search policy model portfolio
      policies jobs deadline_ms verify_live json verbosity trace =
    guarded @@ fun () ->
    let app = find_app name in
    validate_onchip onchip;
    (* The observer reports on stderr only: a --verify-live run's
       stdout is bit-identical to a plain one (pinned by CI). *)
    let suppress =
      if verify_live then load_suppress None
      else Mhla_analysis.Suppress.empty
    in
    (match jobs with
    | Some j when j < 1 ->
      Error.invalidf ~context:"mhla" ~hint:"pass -j a positive worker count"
        "jobs must be at least 1 (got %d)" j
    | _ -> ());
    let program = Lazy.force app.Mhla_apps.Defs.program in
    let hierarchy = hierarchy_of app ~onchip ~dma in
    let config = config_of objective mode in
    let checkpoint = checkpoint_of deadline_ms in
    if portfolio then begin
      if policy <> None || model <> None || search <> None then
        Error.invalidf ~context:"mhla run"
          ~hint:"--portfolio races whole policies; pick the field with \
                 --policies"
          "--portfolio conflicts with --policy, --model and --search";
      let field =
        match policies with
        | None -> Registry.default_portfolio
        | Some names -> List.map (Registry.find ~context:"mhla run") names
      in
      let outcome =
        with_telemetry ~trace ~verbosity @@ fun telemetry ->
        Portfolio.race ~config ?jobs ~telemetry ?checkpoint ~verify_live
          ~suppress ~policies:field program hierarchy
      in
      if json then
        print_endline
          (Mhla_util.Json.to_string ~indent:2
             (Portfolio.to_json ~id:name outcome))
      else begin
        match verbosity with
        | Quiet -> ()
        | Normal | Verbose | Debug ->
          List.iter
            (fun (e : Portfolio.entry) ->
              Fmt.pr "  %-18s %.6g%s@." e.Portfolio.policy.Policy.name
                e.Portfolio.objective
                (if e == outcome.Portfolio.winner then "  <- winner" else ""))
            outcome.Portfolio.entrants;
          print_endline
            (Report.summary ~name outcome.Portfolio.winner.Portfolio.result)
      end
    end
    else begin
      if policies <> None then
        Error.invalidf ~context:"mhla run"
          ~hint:"--policies names the field a --portfolio run races"
          "--policies requires --portfolio";
      if jobs <> None then
        Error.invalidf ~context:"mhla run"
          ~hint:"a single solve has nothing to parallelise; -j drives \
                 --portfolio"
          "-j requires --portfolio";
      let chosen =
        match (policy, model) with
        | None, None -> None
        | (Some "predictor" | None), Some file ->
          Some (Policy.predictor (load_model file))
        | Some "predictor", None ->
          Error.invalidf ~context:"mhla run"
            ~hint:"the predictor policy needs a fitted model; pass --model \
                   FILE (see mhla fit)"
            "--policy predictor requires --model"
        | Some name, None -> Some (Registry.find ~context:"mhla run" name)
        | Some name, Some _ ->
          Error.invalidf ~context:"mhla run"
            "--model only applies to the predictor policy (got --policy %s)"
            name
      in
      (match (chosen, search) with
      | Some _, Some _ ->
        Error.invalidf ~context:"mhla run"
          ~hint:"a policy already fixes the step-1 search"
          "--policy/--model conflicts with --search"
      | _ -> ());
      let result =
        with_telemetry ~trace ~verbosity @@ fun telemetry ->
        let live =
          if verify_live then
            Some
              (Mhla_analysis.Live.of_config ~suppress config program
                 hierarchy)
          else None
        in
        let on_commit =
          Option.map (fun l m -> Mhla_analysis.Live.on_commit l m) live
        in
        let result =
          match chosen with
          | Some p ->
            Policy.run ~config ~telemetry ?checkpoint ?on_commit p program
              hierarchy
          | None ->
            Explore.run ~config
              ~search:(resolve_search search)
              ~telemetry ?checkpoint ?on_commit program hierarchy
        in
        Option.iter
          (fun l ->
            let report = Mhla_analysis.Live.check l result in
            if verbosity <> Quiet then
              Fmt.epr "verify-live: %a@." Check.pp_report report)
          live;
        result
      in
      if json then
        print_endline
          (Mhla_util.Json.to_string ~indent:2
             (Report.result_to_json ~name result))
      else begin
        match verbosity with
        | Quiet -> ()
        | Verbose | Debug -> print_endline (Report.detailed ~name result)
        | Normal -> print_endline (Report.summary ~name result)
      end
    end
  in
  let policy_arg =
    let doc =
      "Run under a named policy (search + TE order + CC filter); see the \
       registry: greedy, greedy-first, anneal, te-fifo, te-size, lean, or \
       predictor (with $(b,--model))."
    in
    Arg.(
      value & opt (some string) None & info [ "policy" ] ~docv:"NAME" ~doc)
  in
  let model_arg =
    let doc =
      "Fitted CC-pruning predictor (JSON from $(b,mhla fit)); implies the \
       predictor policy."
    in
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"FILE" ~doc)
  in
  let portfolio_arg =
    let doc =
      "Race a field of policies in parallel and report the best finisher \
       (deterministic winner for every $(b,-j))."
    in
    Arg.(value & flag & info [ "portfolio" ] ~doc)
  in
  let policies_arg =
    let doc =
      "Comma-separated policy names for $(b,--portfolio); default: greedy, \
       greedy-first, anneal."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "policies" ] ~docv:"NAMES" ~doc)
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains racing portfolio entrants in parallel; the \
             winner is identical for every $(docv).")
  in
  let doc = "Run the two-step MHLA+TE flow on an application." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ app_arg $ onchip_arg $ dma_arg $ objective_arg $ mode_arg
      $ search_arg $ policy_arg $ model_arg $ portfolio_arg $ policies_arg
      $ jobs_arg $ deadline_arg $ verify_live_arg $ json_arg
      $ verbosity_term $ trace_arg)

let emit_cmd =
  let run name onchip dma objective mode =
    guarded @@ fun () ->
    let app = find_app name in
    validate_onchip onchip;
    let program = Lazy.force app.Mhla_apps.Defs.program in
    let hierarchy = hierarchy_of app ~onchip ~dma in
    let config = config_of objective mode in
    let result = Explore.run ~config program hierarchy in
    print_string
      (Mhla_codegen.Emit.emit ~schedule:result.Explore.te
         result.Explore.assign.Assign.mapping)
  in
  let doc =
    "Emit the MHLA+TE-transformed program as pseudo-C (buffers, DMA \
     issues, rewritten accesses)."
  in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(
      const run $ app_arg $ onchip_arg $ dma_arg $ objective_arg $ mode_arg)

let sweep_cmd =
  let run name min_bytes max_bytes dma objective mode jobs deadline_ms json
      verbosity trace =
    guarded @@ fun () ->
    let app = find_app name in
    (match jobs with
    | Some j when j < 1 ->
      Error.invalidf ~context:"mhla" ~hint:"pass -j a positive worker count"
        "jobs must be at least 1 (got %d)" j
    | _ -> ());
    let program = Lazy.force app.Mhla_apps.Defs.program in
    let sizes = Mhla_arch.Presets.sweep_sizes ~min_bytes ~max_bytes in
    let config = config_of objective mode in
    let checkpoint = checkpoint_of deadline_ms in
    let points =
      with_telemetry ~trace ~verbosity @@ fun telemetry ->
      Explore.sweep ~config ~dma ?jobs ~telemetry ?checkpoint ~sizes program
    in
    if json then
      print_endline
        (Mhla_util.Json.to_string ~indent:2 (Report.sweep_to_json points))
    else if verbosity <> Quiet then Table.print (Report.sweep_table points)
  in
  let min_arg =
    Arg.(value & opt int 128 & info [ "min" ] ~docv:"BYTES"
           ~doc:"Smallest on-chip size.")
  in
  let max_arg =
    Arg.(value & opt int 8192 & info [ "max" ] ~docv:"BYTES"
           ~doc:"Largest on-chip size.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains exploring sizes in parallel; defaults to \
                   the machine's recommended domain count. Results are \
                   identical for every $(docv).")
  in
  let doc = "Explore the size/cost trade-off for an application." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ app_arg $ min_arg $ max_arg $ dma_arg $ objective_arg
      $ mode_arg $ jobs_arg $ deadline_arg $ json_arg $ verbosity_term
      $ trace_arg)

let pareto_cmd =
  let run name axes levels min_bytes max_bytes dma objective search jobs
      deadline_ms json verbosity trace =
    guarded @@ fun () ->
    let app = find_app name in
    (match jobs with
    | Some j when j < 1 ->
      Error.invalidf ~context:"mhla" ~hint:"pass -j a positive worker count"
        "jobs must be at least 1 (got %d)" j
    | _ -> ());
    let program = Lazy.force app.Mhla_apps.Defs.program in
    let axes =
      match axes with
      | [] -> Mhla_arch.Presets.budget_axes ~levels ~min_bytes ~max_bytes
      | axes -> axes
    in
    let config = { Assign.default_config with Assign.objective } in
    let checkpoint = checkpoint_of deadline_ms in
    let outcome =
      with_telemetry ~trace ~verbosity @@ fun telemetry ->
      Explore.pareto ~config ~dma
        ~search:(resolve_search search)
        ?jobs ~telemetry ?checkpoint ~axes program
    in
    if json then
      print_endline
        (Mhla_util.Json.to_string ~indent:2 (Report.pareto_to_json outcome))
    else if verbosity <> Quiet then begin
      Table.print (Report.pareto_table outcome);
      let s = outcome.Explore.stats in
      Fmt.pr
        "frontier: %d of %d grid point(s) (%d evaluated, %d pruned, %d \
         region(s) pruned wholesale)@."
        (Mhla_util.Pareto.Nd.size outcome.Explore.frontier)
        s.Explore.grid_points s.Explore.evaluated s.Explore.pruned
        s.Explore.regions_pruned
    end;
    if outcome.Explore.partial then
      Fmt.epr
        "warning: deadline expired mid-search; the frontier is the best \
         surface seen so far, not the complete one@."
  in
  let level_arg =
    Arg.(
      value
      & opt_all (list int) []
      & info [ "level" ] ~docv:"SIZES"
          ~doc:
            "Candidate sizes (comma-separated bytes) for one on-chip \
             level; repeat the flag once per level, innermost first. \
             Overrides $(b,--levels)/$(b,--min)/$(b,--max).")
  in
  let levels_arg =
    Arg.(
      value & opt int 1
      & info [ "levels" ] ~docv:"N"
          ~doc:
            "Number of on-chip levels when no $(b,--level) axes are \
             given; each level then sweeps the $(b,--min)..$(b,--max) \
             ladder.")
  in
  let min_arg =
    Arg.(value & opt int 128
         & info [ "min" ] ~docv:"BYTES" ~doc:"Smallest generated size.")
  in
  let max_arg =
    Arg.(value & opt int 8192
         & info [ "max" ] ~docv:"BYTES" ~doc:"Largest generated size.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains exploring grid regions in parallel; defaults \
             to the machine's recommended domain count. The frontier is \
             identical for every $(docv).")
  in
  let doc =
    "Explore the per-layer budget grid of an application and report the \
     (size, time, energy) Pareto frontier."
  in
  Cmd.v (Cmd.info "pareto" ~doc)
    Term.(
      const run $ app_arg $ level_arg $ levels_arg $ min_arg $ max_arg
      $ dma_arg $ objective_arg $ search_arg $ jobs_arg $ deadline_arg
      $ json_arg $ verbosity_term $ trace_arg)

let figures_cmd =
  let run json =
    guarded @@ fun () ->
    let results =
      List.map
        (fun (app : Mhla_apps.Defs.t) ->
          let hierarchy =
            hierarchy_of app ~onchip:None ~dma:true
          in
          ( app.Mhla_apps.Defs.name,
            Explore.run (Lazy.force app.Mhla_apps.Defs.program) hierarchy ))
        Apps.all
    in
    if json then
      print_endline
        (Mhla_util.Json.to_string ~indent:2 (Report.results_to_json results))
    else begin
      print_endline
        "Figure 2 - normalised execution time (out-of-box = 1.00):";
      Table.print (Report.figure2_table results);
      print_newline ();
      print_endline "Figure 3 - normalised energy (out-of-box = 1.00):";
      Table.print (Report.figure3_table results)
    end
  in
  let doc = "Regenerate the paper's Figure 2 and Figure 3 data." in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const run $ json_arg)

let robustness_cmd =
  let run name onchip dma objective mode seed trials jitter failure retries
      patience json verbosity trace =
    guarded @@ fun () ->
    let app = find_app name in
    validate_onchip onchip;
    let faults =
      Mhla_sim.Faults.make
        ~jitter:
          (if jitter = 0 then Mhla_sim.Faults.No_jitter
           else Mhla_sim.Faults.Uniform { max_extra_cycles = jitter })
        ~failure_permille:failure ~max_retries:retries
        ?deadline_patience:patience ~seed:(Int64.of_int seed) ()
    in
    let program = Lazy.force app.Mhla_apps.Defs.program in
    let hierarchy = hierarchy_of app ~onchip ~dma in
    let config = config_of objective mode in
    let report =
      with_telemetry ~trace ~verbosity @@ fun telemetry ->
      let result = Explore.run ~config ~telemetry program hierarchy in
      Mhla_sim.Robustness.analyze ~trials ~telemetry ~faults
        result.Explore.assign.Assign.mapping result.Explore.te
    in
    if json then
      print_endline
        (Mhla_util.Json.to_string ~indent:2
           (Mhla_sim.Robustness.to_json report))
    else if report.Mhla_sim.Robustness.plans = [] then begin
      if verbosity <> Quiet then
        print_endline
          "no prefetch streams to stress (TE planned no block transfers)"
    end
    else begin
      if verbosity <> Quiet then Fmt.pr "%a@." Mhla_sim.Robustness.pp report;
      if not report.Mhla_sim.Robustness.all_zero_fault_consistent then begin
        prerr_endline "mhla: zero-fault simulation drifted from Pipeline.run";
        exit (Error.exit_code
                (Error.make Error.Internal ~context:"mhla robustness"
                   "zero-fault drift"))
      end
    end
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"INT"
             ~doc:"Root seed of the deterministic fault trace.")
  in
  let trials_arg =
    Arg.(value & opt int 16
         & info [ "trials" ] ~docv:"N"
             ~doc:"Independently reseeded fault trials per stream.")
  in
  let jitter_arg =
    Arg.(value & opt int 8
         & info [ "jitter" ] ~docv:"CYCLES"
             ~doc:"Uniform extra transfer latency in 0..$(docv); 0 disables.")
  in
  let failure_arg =
    Arg.(value & opt int 20
         & info [ "failure" ] ~docv:"PERMILLE"
             ~doc:"Per-attempt corrupt-transfer probability in 1/1000.")
  in
  let retries_arg =
    Arg.(value & opt int 3
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retries after a corrupt transfer before the consumer \
                   falls back to a synchronous refetch.")
  in
  let patience_arg =
    Arg.(value & opt (some int) None
         & info [ "patience" ] ~docv:"CYCLES"
             ~doc:"Deadline: a consumer stalling longer than $(docv) on a \
                   pending transfer refetches synchronously instead.")
  in
  let doc =
    "Stress an application's TE schedule under injected DMA faults \
     (latency jitter, corrupt transfers with retry/backoff) and report \
     per-stream stall inflation and degradation activity (EXT-FAULT)."
  in
  Cmd.v (Cmd.info "robustness" ~doc)
    Term.(
      const run $ app_arg $ onchip_arg $ dma_arg $ objective_arg $ mode_arg
      $ seed_arg $ trials_arg $ jitter_arg $ failure_arg $ retries_arg
      $ patience_arg $ json_arg $ verbosity_term $ trace_arg)

(* --- simulate ---------------------------------------------------------- *)

let simulate_cmd =
  let run name onchip dma objective mode channels queue_depth arbitration
      shared_bus invalidate json verbosity trace =
    guarded @@ fun () ->
    let app = find_app name in
    validate_onchip onchip;
    (match channels with
    | Some c when c < 1 ->
      Error.invalidf ~context:"mhla"
        ~hint:"pass a positive channel count to --channels"
        "channel count must be >= 1 (got %d)" c
    | _ -> ());
    (match queue_depth with
    | Some d when d < 1 ->
      Error.invalidf ~context:"mhla"
        ~hint:"pass a positive slot count to --queue-depth"
        "queue depth must be >= 1 (got %d)" d
    | _ -> ());
    let program = Lazy.force app.Mhla_apps.Defs.program in
    let hierarchy = hierarchy_of app ~onchip ~dma in
    let config = config_of objective mode in
    let report =
      with_telemetry ~trace ~verbosity @@ fun telemetry ->
      let result = Explore.run ~config ~telemetry program hierarchy in
      let sim_config =
        let base =
          Mhla_sim.Event.of_hierarchy ?queue_depth ~arbitration
            ~shared_bus ~invalidate_on_miss:invalidate hierarchy
        in
        match channels with
        | None -> base
        | Some channels -> { base with Mhla_sim.Event.channels }
      in
      Mhla_sim.Crosscheck.check_event ~telemetry ~config:sim_config
        result.Explore.assign.Assign.mapping result.Explore.te
    in
    if json then
      print_endline
        (Mhla_util.Json.to_string ~indent:2
           (Mhla_sim.Crosscheck.event_report_to_json report))
    else if report.Mhla_sim.Crosscheck.event_checks = [] then begin
      if verbosity <> Quiet then
        print_endline
          "no prefetch streams to simulate (TE planned no block transfers)"
    end
    else if verbosity <> Quiet then begin
      List.iter
        (Fmt.pr "%a@." Mhla_sim.Crosscheck.pp_event_check)
        report.Mhla_sim.Crosscheck.event_checks;
      match report.Mhla_sim.Crosscheck.event_divergences with
      | [] ->
        Fmt.pr "agreement: analytic and event-driven TE gains track on \
                all %d streams@."
          (List.length report.Mhla_sim.Crosscheck.event_checks)
      | ds ->
        List.iter (Fmt.pr "%a@." Mhla_sim.Crosscheck.pp_event_divergence) ds
    end
  in
  let channels_arg =
    Arg.(value & opt (some int) None
         & info [ "channels" ] ~docv:"N"
             ~doc:"DMA channels to simulate; defaults to the hierarchy's \
                   DMA preset.")
  in
  let queue_depth_arg =
    Arg.(value & opt (some int) None
         & info [ "queue-depth" ] ~docv:"SLOTS"
             ~doc:"Bound the prefetch queue to $(docv) outstanding \
                   transfers; issues beyond it are deferred. Default: \
                   unbounded.")
  in
  let arbitration_arg =
    Arg.(value
         & opt
             (enum
                [ ("earliest-free", Mhla_sim.Event.Earliest_free);
                  ("round-robin", Mhla_sim.Event.Round_robin) ])
             Mhla_sim.Event.Earliest_free
         & info [ "arbitration" ] ~docv:"POLICY"
             ~doc:"Channel arbitration: earliest-free (the analytic \
                   model's argmin) or round-robin.")
  in
  let shared_bus_arg =
    Arg.(value & flag
         & info [ "shared-bus" ]
             ~doc:"All channels and the CPU demand path contend for one \
                   single-occupancy bus.")
  in
  let invalidate_arg =
    Arg.(value & flag
         & info [ "invalidate-on-miss" ]
             ~doc:"A demand miss flushes queued-but-unstarted prefetches \
                   (the GBA prefetch-buffer rule).")
  in
  let doc =
    "Replay an application's TE schedule on the discrete-event \
     cycle-level DMA/bus simulator and cross-validate the analytic TE \
     gain against the event-driven one (EXT-ESIM). Divergences are \
     reported as structured diagnostics, not failures."
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ app_arg $ onchip_arg $ dma_arg $ objective_arg $ mode_arg
      $ channels_arg $ queue_depth_arg $ arbitration_arg $ shared_bus_arg
      $ invalidate_arg $ json_arg $ verbosity_term $ trace_arg)

(* --- check ------------------------------------------------------------- *)

(* Seeded corruptions for the self-test gate: each breaks exactly the
   invariant one verifier pass re-derives, so that pass must catch it.
   CI uses these to prove the checkers are live, not vacuous. *)
type mutation =
  | No_mutation
  | Mutate_bounds
  | Mutate_te
  | Mutate_capacity
  | Mutate_interference
  | Mutate_lints

let mutation_conv =
  Arg.enum
    [ ("none", No_mutation); ("bounds", Mutate_bounds); ("te", Mutate_te);
      ("capacity", Mutate_capacity); ("interference", Mutate_interference);
      ("lints", Mutate_lints) ]

(* Push one subscript past its declared extent: the first access's
   first subscript [e] becomes [e + dim0], so its maximum lands at or
   beyond the bound (MHLA001). *)
let mutate_bounds (program : Mhla_ir.Program.t) =
  let module P = Mhla_ir.Program in
  let corrupted = ref false in
  let corrupt_access (a : Mhla_ir.Access.t) =
    if !corrupted then a
    else begin
      corrupted := true;
      let decl =
        match P.find_array program a.Mhla_ir.Access.array with
        | Some d -> d
        | None -> assert false (* the program validated *)
      in
      let index =
        match a.Mhla_ir.Access.index with
        | e :: rest ->
          Mhla_ir.Affine.offset (List.hd decl.Mhla_ir.Array_decl.dims) e
          :: rest
        | [] -> []
      in
      Mhla_ir.Access.make ~array:a.Mhla_ir.Access.array
        ~direction:a.Mhla_ir.Access.direction ~index
    end
  in
  let corrupt_stmt (s : Mhla_ir.Stmt.t) =
    Mhla_ir.Stmt.make ~name:s.Mhla_ir.Stmt.name
      ~work_cycles:s.Mhla_ir.Stmt.work_cycles
      ~accesses:(List.map corrupt_access s.Mhla_ir.Stmt.accesses)
  in
  let rec corrupt_node = function
    | P.Stmt s -> P.Stmt (corrupt_stmt s)
    | P.Loop l -> P.Loop { l with P.body = List.map corrupt_node l.P.body }
  in
  let body = List.map corrupt_node program.P.body in
  if not !corrupted then
    Error.invalidf ~context:"mhla check"
      "--mutate bounds: %s has no array accesses" program.P.name;
  P.make_exn ~name:(program.P.name ^ "+oob") ~arrays:program.P.arrays ~body

(* Extend the highest-priority plan one loop past its recomputed
   freedom — the dependency-crossing prefetch MHLA101 exists to catch.
   Buffers are provisioned to match the bogus grant so the race is the
   defect, not the buffer count. *)
let mutate_te (m : Mhla_core.Mapping.t) (schedule : Prefetch.schedule) =
  match schedule.Prefetch.plans with
  | [] ->
    Error.invalidf ~context:"mhla check"
      ~hint:"pick an application whose TE step plans block transfers"
      "--mutate te: the schedule has no plans to corrupt"
  | plan :: rest ->
    let freedom = Mhla_analysis.Dma_race.freedom_of_plan m plan in
    let enclosing =
      let stmt =
        plan.Prefetch.bt.Mhla_core.Mapping.bt_candidate
          .Mhla_reuse.Candidate.stmt
      in
      match Mhla_ir.Program.find_context m.Mhla_core.Mapping.program ~stmt with
      | Some ctx -> List.rev_map fst ctx.Mhla_ir.Program.loops
      | None -> []
    in
    let bogus =
      match List.find_opt (fun it -> not (List.mem it freedom)) enclosing with
      | Some it -> it
      | None -> "__phantom"
    in
    let extended = freedom @ [ bogus ] in
    let plan =
      { plan with Prefetch.extended; extra_buffers = List.length extended }
    in
    { schedule with Prefetch.plans = plan :: rest }

(* Swap in a hierarchy one byte smaller than the recomputed peak while
   keeping every placement: the capacity pass must flag the layer
   (MHLA201). *)
let mutate_capacity (m : Mhla_core.Mapping.t) schedule policy =
  let peaks = Mhla_analysis.Capacity.recomputed_peaks ~schedule ~policy m in
  let peak = List.fold_left (fun acc (_, p) -> max acc p) 0 peaks in
  if peak <= 1 then
    Error.invalidf ~context:"mhla check"
      ~hint:"pick an application that places copies on-chip"
      "--mutate capacity: nothing lives on-chip (peak %dB)" peak;
  let hierarchy =
    Mhla_arch.Presets.two_level
      ~dma:(Mhla_arch.Hierarchy.has_dma m.Mhla_core.Mapping.hierarchy)
      ~onchip_bytes:(peak - 1) ()
  in
  Mhla_core.Mapping.with_hierarchy m hierarchy

(* Bump the highest plan's DMA priority out of the contiguous 0..n-1
   sequence: the interference pass's priority audit (MHLA204) must
   flag the hole. *)
let mutate_interference (schedule : Prefetch.schedule) =
  match schedule.Prefetch.plans with
  | [] ->
    Error.invalidf ~context:"mhla check"
      ~hint:"pick an application whose TE step plans block transfers"
      "--mutate interference: the schedule has no plans to corrupt"
  | plan :: rest ->
    let plan =
      { plan with Prefetch.dma_priority = plan.Prefetch.dma_priority + 1 }
    in
    { schedule with Prefetch.plans = plan :: rest }

(* Declare an array no statement accesses: the lints pass must report
   MHLA301 on it. Lints are warnings, so the self-test gate is
   [--mutate lints --Werror] (with pre-existing warnings suppressed
   via a lint config when the subject has any). *)
let mutate_lints (program : Mhla_ir.Program.t) =
  let module P = Mhla_ir.Program in
  P.make_exn
    ~name:(program.P.name ^ "+lint")
    ~arrays:
      (program.P.arrays
      @ [
          Mhla_ir.Array_decl.make ~name:"__mhla_unused" ~dims:[ 4 ]
            ~element_bytes:1;
        ])
    ~body:program.P.body

let mutated_subject ~policy ~program ~mapping ~te = function
  | No_mutation -> Check_pass.of_mapping ~schedule:te ~policy mapping
  | Mutate_bounds -> Check_pass.subject ~policy (mutate_bounds program)
  | Mutate_te ->
    Check_pass.of_mapping ~schedule:(mutate_te mapping te) ~policy mapping
  | Mutate_capacity ->
    Check_pass.of_mapping ~schedule:te ~policy
      (mutate_capacity mapping te policy)
  | Mutate_interference ->
    Check_pass.of_mapping ~schedule:(mutate_interference te) ~policy mapping
  | Mutate_lints -> Check_pass.subject ~policy (mutate_lints program)

let write_sarif ~file report =
  let doc =
    Mhla_analysis.Sarif.of_report ~tool_version:"1.0.0" report
  in
  let text = Mhla_util.Json.to_string ~indent:2 doc in
  if file = "-" then print_endline text
  else begin
    let oc =
      try open_out file
      with Sys_error m ->
        Error.invalidf ~context:"mhla check"
          ~hint:"pass --sarif a writable path (or - for stdout)" "%s" m
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc text;
        output_char oc '\n')
  end

let check_cmd =
  let run name onchip dma objective mode search json werror only skip mutate
      explain sarif lint_config corpus seed profile verbosity trace =
    guarded @@ fun () ->
    match explain with
    | Some code ->
      Fmt.pr "%a@." Mhla_analysis.Explain.pp
        (Mhla_analysis.Explain.explain code)
    | None -> (
      let suppress = load_suppress lint_config in
      let only = match only with [] -> None | l -> Some l in
      let skip = match skip with [] -> None | l -> Some l in
      let config = config_of objective mode in
      let policy = config.Assign.policy in
      let checked ~telemetry program hierarchy =
        let result =
          Explore.run ~config
            ~search:(resolve_search search)
            ~telemetry program hierarchy
        in
        let mapping = result.Explore.assign.Assign.mapping in
        let subject =
          mutated_subject ~policy ~program ~mapping ~te:result.Explore.te
            mutate
        in
        let report = Check.run ?only ?skip ~suppress ~telemetry subject in
        if werror then Check.promote_warnings report else report
      in
      match corpus with
      | Some count ->
        if name <> None then
          Error.invalidf ~context:"mhla check"
            ~hint:"--corpus generates its own programs; drop APP"
            "--corpus conflicts with an application argument";
        if count < 1 then
          Error.invalidf ~context:"mhla check"
            ~hint:"pass --corpus a positive case count"
            "corpus size must be at least 1 (got %d)" count;
        if sarif <> None then
          Error.invalidf ~context:"mhla check"
            ~hint:"SARIF export covers a single subject; check one APP"
            "--sarif conflicts with --corpus";
        let module Gen = Mhla_gen.Generate in
        let reports =
          with_telemetry ~trace ~verbosity @@ fun telemetry ->
          let rng = Mhla_util.Prng.create ~seed in
          List.init count (fun _ -> Mhla_util.Prng.next_int64 rng)
          |> List.map (fun case_seed ->
                 let case = Gen.case ~profile ~seed:case_seed () in
                 let hierarchy =
                   Mhla_arch.Presets.two_level
                     ~onchip_bytes:case.Gen.onchip_bytes ()
                 in
                 (case_seed, checked ~telemetry case.Gen.program hierarchy))
        in
        let failing =
          List.filter (fun (_, r) -> not (Check.ok r)) reports
        in
        List.iter
          (fun (case_seed, r) ->
            Fmt.epr "@[<v>check corpus: case seed %Ld fails:@,%a@]@."
              case_seed Check.pp_report r)
          failing;
        if verbosity <> Quiet then
          Fmt.pr
            "check corpus: %d case(s), %d failing (profile %s, seed %Ld)@."
            count (List.length failing)
            (Gen.profile_name profile)
            seed;
        if failing <> [] then exit 1
      | None ->
        let name =
          match name with
          | Some n -> n
          | None ->
            Error.invalidf ~context:"mhla check"
              ~hint:"name an application (see mhla list), or use \
                     --corpus N / --explain CODE"
              "no application named"
        in
        let app = find_app name in
        validate_onchip onchip;
        let program = Lazy.force app.Mhla_apps.Defs.program in
        let hierarchy = hierarchy_of app ~onchip ~dma in
        let report =
          with_telemetry ~trace ~verbosity @@ fun telemetry ->
          checked ~telemetry program hierarchy
        in
        Option.iter (fun file -> write_sarif ~file report) sarif;
        if json then
          print_endline
            (Mhla_util.Json.to_string ~indent:2 (Check.report_to_json report))
        else if verbosity <> Quiet then
          Fmt.pr "%a@." Check.pp_report report;
        if not (Check.ok report) then exit 1)
  in
  let werror_arg =
    Arg.(value & flag
         & info [ "Werror" ]
             ~doc:"Treat Warning diagnostics as Errors (fail the run).")
  in
  let pass_arg =
    Arg.(value & opt_all string []
         & info [ "pass" ] ~docv:"NAME"
             ~doc:"Run only the named pass (repeatable): bounds, dma-race, \
                   capacity, interference, determinism or lints. Default: \
                   all.")
  in
  let skip_arg =
    Arg.(value & opt_all string []
         & info [ "skip" ] ~docv:"NAME"
             ~doc:"Skip the named pass (repeatable).")
  in
  let mutate_arg =
    Arg.(value & opt mutation_conv No_mutation
         & info [ "mutate" ] ~docv:"KIND"
             ~doc:"Self-test: corrupt the solver output before checking \
                   (bounds, te, capacity, interference or lints) — the run \
                   must then exit 1 (lints needs $(b,--Werror)). Default: \
                   none.")
  in
  let opt_app_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"APP"
          ~doc:"Application name (see $(b,mhla list)); omitted with \
                $(b,--corpus) or $(b,--explain).")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"CODE"
          ~doc:"Print a diagnostic code's derivation story (which pass, \
                from which facts, what to do) and exit.")
  in
  let sarif_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:"Also write the report as SARIF 2.1.0 to $(docv) ($(b,-) \
                for stdout).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "corpus" ] ~docv:"N"
          ~doc:"Instead of one application, solve and check $(docv) \
                generated programs (the fuzzer's generator, seeded by \
                $(b,--seed)/$(b,--profile)); exits 1 if any case fails.")
  in
  let seed_arg =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"INT64"
          ~doc:"Root seed of the $(b,--corpus) case-seed stream.")
  in
  let profile_arg =
    Arg.(
      value
      & opt (enum Mhla_gen.Generate.all_profiles) Mhla_gen.Generate.Mixed
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:"Difficulty profile of the $(b,--corpus) programs (see \
                $(b,mhla fuzz)).")
  in
  let doc =
    "Statically verify a solved application: re-derive subscript bounds, \
     DMA-race freedom, layer occupancy, TE interference and schedule \
     determinism from the program alone and check the solver's mapping and \
     TE schedule against them; also lint the program. Exits 1 on any Error \
     diagnostic."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ opt_app_arg $ onchip_arg $ dma_arg $ objective_arg
      $ mode_arg $ search_arg $ json_arg $ werror_arg $ pass_arg $ skip_arg
      $ mutate_arg $ explain_arg $ sarif_arg $ lint_config_arg $ corpus_arg
      $ seed_arg $ profile_arg $ verbosity_term $ trace_arg)

(* --- fuzz -------------------------------------------------------------- *)

module Gen = Mhla_gen.Generate
module Oracle = Mhla_gen.Oracle

let fuzz_cmd =
  let run seed count profile jobs replay mutate verbosity =
    guarded @@ fun () ->
    if count < 1 then
      Error.invalidf ~context:"mhla fuzz"
        ~hint:"pass --count a positive number of programs"
        "count must be at least 1 (got %d)" count;
    (match jobs with
    | Some j when j < 1 ->
      Error.invalidf ~context:"mhla fuzz" ~hint:"pass -j a positive worker count"
        "jobs must be at least 1 (got %d)" j
    | _ -> ());
    let seeds =
      match replay with
      | Some s -> [ s ]
      | None ->
        (* Case seeds come from a root PRNG stream, so --seed N --count K
           names the same K cases on every machine. *)
        let rng = Mhla_util.Prng.create ~seed in
        let rec draw k acc =
          if k = count then List.rev acc
          else
            let s = Mhla_util.Prng.next_int64 rng in
            draw (k + 1) (s :: acc)
        in
        draw 0 []
    in
    let outcomes =
      Mhla_util.Domain_pool.map ?jobs
        (fun case_seed -> Oracle.run_case ~mutate ~profile ~seed:case_seed ())
        seeds
    in
    match
      List.find_opt
        (fun (o : Oracle.outcome) -> o.Oracle.failures <> [])
        outcomes
    with
    | None ->
      if verbosity <> Quiet then
        Fmt.pr "fuzz: %d program(s) x %d checks OK (profile %s, seed %Ld)@."
          (List.length seeds)
          (List.length Oracle.check_names)
          (Gen.profile_name profile) seed
    | Some o ->
      let failing =
        List.sort_uniq compare
          (List.map (fun (f : Oracle.failure) -> f.Oracle.check) o.Oracle.failures)
      in
      Fmt.epr "mhla fuzz: counterexample at seed %Ld (profile %s, on-chip %dB)@."
        o.Oracle.seed
        (Gen.profile_name o.Oracle.profile)
        o.Oracle.onchip_bytes;
      List.iter
        (fun (f : Oracle.failure) ->
          Fmt.epr "  %s: %s@." f.Oracle.check f.Oracle.detail)
        o.Oracle.failures;
      let shrunk =
        Oracle.shrink_counterexample ~mutate ~profile:o.Oracle.profile ~failing
          o.Oracle.program
      in
      Fmt.epr
        "@.shrunk reproducer (%d -> %d dynamic accesses, budget %dB, paste \
         into a test):@.%s@."
        (Mhla_ir.Program.total_access_count o.Oracle.program)
        (Mhla_ir.Program.total_access_count shrunk)
        (Gen.budget_for ~profile:o.Oracle.profile shrunk)
        (Mhla_gen.Snippet.to_build shrunk);
      (* '=' syntax: a negative seed after a space would parse as an
         option name. *)
      Fmt.epr "@.replay: mhla fuzz --replay=%Ld --profile %s%s@." o.Oracle.seed
        (Gen.profile_name o.Oracle.profile)
        (match mutate with
        | Oracle.No_mutation -> ""
        | Oracle.Drift_engine -> " --mutate engine"
        | Oracle.Drift_interp -> " --mutate interp"
        | Oracle.Drift_verify -> " --mutate verify");
      exit 1
  in
  let seed_arg =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"INT64"
             ~doc:"Root seed of the case-seed stream.")
  in
  let count_arg =
    Arg.(value & opt int 50
         & info [ "count" ] ~docv:"N" ~doc:"Programs to generate and check.")
  in
  let profile_arg =
    Arg.(value & opt (enum Gen.all_profiles) Gen.Mixed
         & info [ "profile" ] ~docv:"PROFILE"
             ~doc:"Difficulty profile: reuse-rich, capacity-tight, te-hostile \
                   or mixed (resolved per seed).")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains checking cases in parallel; defaults to the \
                   machine's recommended domain count. Results are identical \
                   for every $(docv).")
  in
  let replay_arg =
    Arg.(value & opt (some int64) None
         & info [ "replay" ] ~docv:"SEED"
             ~doc:"Re-run exactly one case seed (as printed by a failing run) \
                   instead of drawing --count seeds from --seed.")
  in
  let mutate_arg =
    Arg.(value & opt (enum Oracle.mutation_names) Oracle.No_mutation
         & info [ "mutate" ] ~docv:"KIND"
             ~doc:"Self-test: seed a deliberate drift into one differential \
                   (engine or interp) — the run must then exit 1 with a \
                   shrunk counterexample. Default: none.")
  in
  let doc =
    "Differential fuzzing: generate seeded random in-bounds programs, solve \
     each on a two-level DMA platform, and assert every cross-model \
     invariant (incremental engine vs Cost.evaluate, simulated vs analytic \
     stalls, static verifier on greedy and annealing outputs, trace \
     interpreter vs predicted access counts, fault-injected degradation). \
     On a failure, prints a shrunk Build-DSL reproducer and exits 1."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seed_arg $ count_arg $ profile_arg $ jobs_arg $ replay_arg
      $ mutate_arg $ verbosity_term)

(* --- fit --------------------------------------------------------------- *)

let fit_cmd =
  let run seed count profile threshold ridge output verbosity =
    guarded @@ fun () ->
    if count < 1 then
      Error.invalidf ~context:"mhla fit"
        ~hint:"pass --count a positive number of programs"
        "count must be at least 1 (got %d)" count;
    (* The corpus is named exactly like the fuzzer's: case seeds drawn
       from a root PRNG stream, each program solved under its profile
       budget — so --seed N --count K labels the same training set on
       every machine and the fitted weights are bit-reproducible. *)
    let rng = Mhla_util.Prng.create ~seed in
    let rec draw k acc =
      if k = count then List.rev acc
      else draw (k + 1) (Mhla_util.Prng.next_int64 rng :: acc)
    in
    let seeds = draw 0 [] in
    let samples =
      List.concat_map
        (fun case_seed ->
          let case = Gen.case ~profile ~seed:case_seed () in
          let hierarchy =
            Mhla_arch.Presets.two_level
              ~onchip_bytes:case.Gen.onchip_bytes ()
          in
          Predictor.samples case.Gen.program hierarchy)
        seeds
    in
    let model = Predictor.fit ~ridge ~threshold samples in
    let text =
      Mhla_util.Json.to_string ~indent:2 (Predictor.to_json model)
    in
    (match output with
    | None -> print_endline text
    | Some file ->
      let oc =
        try open_out file
        with Sys_error m ->
          Error.invalidf ~context:"mhla fit" ~hint:"pass -o a writable path"
            "%s" m
      in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc text;
          output_char oc '\n'));
    if verbosity <> Quiet then
      Fmt.epr
        "fit: %d sample(s) from %d program(s) (profile %s, seed %Ld)@."
        model.Predictor.samples count (Gen.profile_name profile) seed
  in
  let seed_arg =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"INT64"
             ~doc:"Root seed of the corpus case-seed stream.")
  in
  let count_arg =
    Arg.(value & opt int 40
         & info [ "count" ] ~docv:"N"
             ~doc:"Programs to generate and label.")
  in
  let profile_arg =
    Arg.(value & opt (enum Gen.all_profiles) Gen.Mixed
         & info [ "profile" ] ~docv:"PROFILE"
             ~doc:"Difficulty profile of the corpus (see $(b,mhla fuzz)).")
  in
  let threshold_arg =
    Arg.(value & opt float Mhla_policy.Predictor.default_threshold
         & info [ "threshold" ] ~docv:"GAIN"
             ~doc:"Keep candidates whose predicted relative gain exceeds \
                   $(docv); stored in the model.")
  in
  let ridge_arg =
    Arg.(value & opt float 1e-6
         & info [ "ridge" ] ~docv:"LAMBDA"
             ~doc:"Ridge regularisation of the least-squares fit.")
  in
  let output_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the model JSON to $(docv) instead of stdout.")
  in
  let doc =
    "Fit the CC-pruning predictor: generate a seeded corpus of programs, \
     label every copy candidate with its engine-probed single-placement \
     gain, and fit the linear model $(b,mhla run --model) loads. \
     Deterministic in the seed."
  in
  Cmd.v (Cmd.info "fit" ~doc)
    Term.(
      const run $ seed_arg $ count_arg $ profile_arg $ threshold_arg
      $ ridge_arg $ output_arg $ verbosity_term)

(* --- service (batch / serve / soak) ------------------------------------ *)

module Service = Mhla_service.Service
module Soak = Mhla_service.Soak

let service_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains solving requests in parallel.")

let queue_depth_arg =
  Arg.(
    value & opt int 16
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:"Bounded job-queue capacity. Submissions beyond it block — or, \
              under $(b,--shed), answer immediately with a structured \
              shed/backpressure response.")

let default_deadline_ms_arg =
  Arg.(
    value & opt (some int) None
    & info [ "default-deadline-ms" ] ~docv:"MS"
        ~doc:"Deadline applied to requests that carry no deadline_ms of \
              their own; measured from submission, so time spent queued \
              counts.")

let shed_arg =
  Arg.(
    value & flag
    & info [ "shed" ]
        ~doc:"When the queue is full, shed new requests with a structured \
              backpressure response instead of blocking the reader.")

let service_config ~telemetry ~jobs ~queue_depth ~default_deadline_ms ~shed
    ~verify_live ~lint_config =
  if jobs < 1 then
    Error.invalidf ~context:"mhla" ~hint:"pass -j a positive worker count"
      "jobs must be at least 1 (got %d)" jobs;
  if queue_depth < 1 then
    Error.invalidf ~context:"mhla"
      ~hint:"pass --queue-depth a positive capacity"
      "queue depth must be at least 1 (got %d)" queue_depth;
  {
    Service.default_config with
    Service.jobs;
    queue_depth;
    default_deadline_ms;
    admission = (if shed then Service.Shed else Service.Block);
    verify_live;
    suppress = load_suppress lint_config;
    telemetry;
  }

let emit_response resp =
  print_endline (Mhla_util.Json.to_string (Mhla_service.Response.to_json resp))

(* Pump one JSONL stream through a service: submit each line, emitting
   completed responses as they become ready (stdout stays pure JSONL,
   in submission order), then drain the tail. *)
let stream_requests config ic =
  let service = Service.create ~config () in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then ignore (Service.submit service line);
       List.iter emit_response (Service.ready service)
     done
   with End_of_file -> ());
  List.iter emit_response (Service.drain service);
  Service.shutdown service;
  Service.summary service

let report_summary ~json ~verbosity summary =
  if json then
    Fmt.epr "%s@."
      (Mhla_util.Json.to_string (Service.summary_to_json summary))
  else if verbosity <> Quiet then Fmt.epr "%a@." Service.pp_summary summary

let batch_cmd =
  let run file jobs queue_depth default_deadline_ms shed verify_live
      lint_config json verbosity trace =
    guarded @@ fun () ->
    let summary =
      with_telemetry ~trace ~verbosity @@ fun telemetry ->
      let config =
        service_config ~telemetry ~jobs ~queue_depth ~default_deadline_ms
          ~shed ~verify_live ~lint_config
      in
      if file = "-" then stream_requests config stdin
      else
        let ic =
          try open_in file
          with Sys_error m ->
            Error.invalidf ~context:"mhla batch"
              ~hint:"pass a readable JSONL file or - for stdin" "%s" m
        in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> stream_requests config ic)
    in
    report_summary ~json ~verbosity summary
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"JSONL request file, one request object per line ($(b,-) for \
                stdin).")
  in
  let doc =
    "Solve a batch of JSONL requests with fault isolation: exactly one \
     structured response per line on stdout (ok, error, timeout or shed) — \
     a malformed, oversized, crashing or deadline-blown request never takes \
     down the batch. The summary goes to stderr."
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run $ file_arg $ service_jobs_arg $ queue_depth_arg
      $ default_deadline_ms_arg $ shed_arg $ verify_live_arg
      $ lint_config_arg $ json_arg $ verbosity_term $ trace_arg)

let serve_cmd =
  let run use_stdin jobs queue_depth default_deadline_ms shed verify_live
      lint_config json verbosity trace =
    guarded @@ fun () ->
    if not use_stdin then
      Error.invalidf ~context:"mhla serve"
        ~hint:"pass --stdin (the only transport currently available)"
        "no transport selected";
    let summary =
      with_telemetry ~trace ~verbosity @@ fun telemetry ->
      let config =
        service_config ~telemetry ~jobs ~queue_depth ~default_deadline_ms
          ~shed ~verify_live ~lint_config
      in
      stream_requests config stdin
    in
    report_summary ~json ~verbosity summary
  in
  let stdin_arg =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:"Read JSONL requests from stdin until EOF, answering on \
                stdout as solves complete.")
  in
  let doc =
    "Run the solver as a long-lived JSONL daemon on stdin/stdout: same wire \
     format and fault isolation as $(b,mhla batch), intended to sit behind \
     a supervisor with $(b,--shed) keeping the reader responsive under \
     load."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ stdin_arg $ service_jobs_arg $ queue_depth_arg
      $ default_deadline_ms_arg $ shed_arg $ verify_live_arg
      $ lint_config_arg $ json_arg $ verbosity_term $ trace_arg)

let soak_cmd =
  let run requests seed jobs queue_depth fault_permille malformed_permille
      emit json verbosity =
    guarded @@ fun () ->
    if requests < 1 then
      Error.invalidf ~context:"mhla soak"
        ~hint:"pass --requests a positive count"
        "requests must be at least 1 (got %d)" requests;
    let permille name v =
      if v < 0 || v > 1000 then
        Error.invalidf ~context:"mhla soak" "%s must be in 0..1000 (got %d)"
          name v
    in
    permille "--fault-permille" fault_permille;
    permille "--malformed-permille" malformed_permille;
    let config =
      {
        Soak.default_config with
        Soak.requests;
        seed;
        jobs;
        queue_depth;
        fault_permille;
        malformed_permille;
      }
    in
    if emit then List.iter print_endline (Soak.lines config)
    else begin
      let outcome = Soak.run ~config () in
      if json then
        print_endline
          (Mhla_util.Json.to_string ~indent:2 (Soak.to_json outcome))
      else if verbosity <> Quiet || not (Soak.ok outcome) then
        Fmt.pr "@[<v>%a@]@." Soak.pp outcome;
      if not (Soak.ok outcome) then exit 1
    end
  in
  let requests_arg =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to drive.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"INT" ~doc:"Root seed of the chaos mix.")
  in
  let fault_arg =
    Arg.(
      value & opt int 100
      & info [ "fault-permille" ] ~docv:"PERMILLE"
          ~doc:"Share of requests carrying a seeded DMA-fault robustness \
                rider (100 = 10%).")
  in
  let malformed_arg =
    Arg.(
      value & opt int 50
      & info [ "malformed-permille" ] ~docv:"PERMILLE"
          ~doc:"Share of requests submitted as malformed JSON (50 = 5%).")
  in
  let emit_arg =
    Arg.(
      value & flag
      & info [ "emit-jsonl" ]
          ~doc:"Print the exact JSONL request lines the soak would submit \
                (for feeding through $(b,mhla batch)) instead of running \
                it.")
  in
  let doc =
    "Chaos-soak the solver service: drive a seeded mix of valid, hostile \
     and broken requests (injected worker crashes, zero deadlines, \
     malformed JSON, oversized payloads, DMA-fault riders) and check the \
     isolation invariants — process survival, exactly one response per \
     request, and ok responses bit-identical to direct solver runs. Exits 1 \
     on any violation."
  in
  Cmd.v (Cmd.info "soak" ~doc)
    Term.(
      const run $ requests_arg $ seed_arg $ service_jobs_arg
      $ queue_depth_arg $ fault_arg $ malformed_arg $ emit_arg $ json_arg
      $ verbosity_term)

let () =
  let doc =
    "memory hierarchy layer assignment and prefetching (MHLA with Time \
     Extensions, DATE 2005)"
  in
  let info = Cmd.info "mhla" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; run_cmd; emit_cmd; sweep_cmd; pareto_cmd;
            figures_cmd; robustness_cmd; simulate_cmd; check_cmd; fuzz_cmd;
            fit_cmd; batch_cmd; serve_cmd; soak_cmd ]))
